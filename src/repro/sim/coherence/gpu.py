"""Conventional GPU coherence (Section II-B).

* Loads fill VALID lines into the L1.
* Stores are write-through, no-allocate: they occupy a store buffer entry
  until acknowledged by the L2.
* All atomics execute at the home L2 bank (bypassing the L1), serialize
  per line, and occupy the bank's atomic unit — so every pushed update is
  L2 traffic, which is exactly why L2-side atomics throttle push kernels
  on high-reuse inputs.
* Acquires self-invalidate the entire L1; releases drain the store buffer
  (tracked by the engine via store drain times).
"""

from __future__ import annotations

from bisect import insort

import numpy as np

from ..cache import VALID
from .base import MemorySystem, queue_scan, ring_scan

__all__ = ["GPUCoherence"]

# Below this many accesses the scalar loop beats the two-pass batch
# machinery (array setup is a fixed cost).
_BATCH_MIN = 8


class GPUCoherence(MemorySystem):
    """Write-through GPU coherence with L2-side atomics."""

    name = "gpu"

    def load(self, sm: int, lines: tuple, now: float) -> float:
        # The per-line L1 lookup/refill below is the simulator's hottest
        # loop, so both the cache's packed-entry protocol (see
        # sim/cache.py) and the L2 service (see base._l2_service) are
        # inlined here.  GPU coherence only ever holds VALID lines in an
        # L1, so `_install_l1`'s owned-writeback path can never trigger
        # and is skipped entirely.  Epochs are loop invariants: nothing
        # below invalidates this L1 or the shared L2.
        l1 = self.l1s[sm]
        l1_sets = l1._sets
        l1_nsets = l1.num_sets
        l1_assoc = l1.assoc
        # ``invalidate_valid``/``invalidate_all`` keep valid_epoch >=
        # all_epoch, and a GPU L1 holds only VALID entries, so liveness
        # of a packed entry ``(epoch << 2) | VALID`` collapses to a
        # single integer compare against ``valid_epoch << 2``.
        live_min = l1._valid_epoch << 2
        packed_valid = live_min | VALID
        cfg = self.config
        l1_lat = cfg.l1_hit_latency
        l2_lat_min = cfg.l2_latency_min
        bank_occ = cfg.l2_bank_occupancy
        l2 = self.l2
        l2_sets = l2._sets
        l2_nsets = l2.num_sets
        l2_assoc = l2.assoc
        l2_live_min = l2._valid_epoch << 2
        l2_packed_valid = l2_live_min | VALID
        l2_install = l2.install
        l2_banks = self._l2_banks
        l2_span1 = self._l2_span1
        banks_free = self._l2_bank_free
        mem_channels = self._mem_channels
        mem_lat_min = self._mem_lat_min
        mem_span1 = self._mem_span1
        mem_occ = self._mem_occupancy
        channels_free = self._mem_channel_free
        mshrs = self._mshrs[sm]
        mshr_free = mshrs.free_at
        mshr_n = mshrs.n
        worst = now + l1_lat
        hits = 0
        misses = 0
        l2_hits = 0
        l2_misses = 0
        for line in lines:
            cache_set = l1_sets[line % l1_nsets]
            # -1 sentinel: real entries are >= 0 and live_min >= 0, so a
            # missing line fails the single liveness compare directly.
            entry = cache_set.pop(line, -1)
            if entry >= live_min:
                cache_set[line] = entry
                hits += 1
                continue
            misses += 1
            i = mshrs.idx
            mshrs.idx = (i + 1) % mshr_n
            start = mshr_free[i]
            if start < now:
                start = now
            mshr_free[i] = start + l2_lat_min
            # --- L2 service (inlined _l2_service) ---
            bank = line % l2_banks
            bstart = banks_free[bank]
            if bstart < start:
                bstart = start
            banks_free[bank] = bstart + bank_occ
            l2_lat = l2_lat_min + (bank + sm) % l2_span1
            l2_set = l2_sets[line % l2_nsets]
            l2_entry = l2_set.pop(line, -1)
            if l2_entry >= l2_live_min:
                l2_set[line] = l2_entry
                l2_hits += 1
                done = bstart + bank_occ + l2_lat + l1_lat
            else:
                l2_misses += 1
                if len(l2_set) >= l2_assoc:
                    if l2_live_min:
                        l2_install(line, VALID)
                    else:
                        del l2_set[next(iter(l2_set))]
                        l2_set[line] = l2_packed_valid
                else:
                    l2_set[line] = l2_packed_valid
                channel = line % mem_channels
                mstart = channels_free[channel]
                issue = bstart + bank_occ
                if mstart < issue:
                    mstart = issue
                channels_free[channel] = mstart + mem_occ
                done = (mstart + mem_occ
                        + mem_lat_min + (bank + sm) % mem_span1
                        + l2_lat + l1_lat)
            # --- L1 refill (inlined install; always VALID) ---
            if len(cache_set) >= l1_assoc:
                victim = None
                if live_min:
                    for cand, cand_entry in cache_set.items():
                        if cand_entry < live_min:
                            victim = cand
                            break
                if victim is None:
                    victim = next(iter(cache_set))
                del cache_set[victim]
            cache_set[line] = packed_valid
            if done > worst:
                worst = done
        stats = self.stats
        stats.l1_hits += hits
        stats.l1_misses += misses
        stats.l2_hits += l2_hits
        stats.l2_misses += l2_misses
        return worst

    def store(self, sm: int, lines: tuple, now: float) -> tuple[float, float]:
        # Write-through per-line drain with the L2 service inlined as in
        # `load` (pull kernels store every round, so this loop is hot).
        cfg = self.config
        buffers = self._store_buffers[sm]
        buf_free = buffers.free_at
        buf_n = buffers.n
        hold = cfg.l2_latency_min + cfg.l2_bank_occupancy
        bank_occ = cfg.l2_bank_occupancy
        l2_banks = self._l2_banks
        l2_span1 = self._l2_span1
        l2_lat_min = self._l2_lat_min
        banks_free = self._l2_bank_free
        l2 = self.l2
        l2_sets = l2._sets
        l2_nsets = l2.num_sets
        l2_assoc = l2.assoc
        l2_live_min = l2._valid_epoch << 2
        l2_packed_valid = l2_live_min | VALID
        l2_install = l2.install
        mem_channels = self._mem_channels
        mem_lat_min = self._mem_lat_min
        mem_span1 = self._mem_span1
        mem_occ = self._mem_occupancy
        channels_free = self._mem_channel_free
        accept = now
        drain = now
        l2_hits = 0
        l2_misses = 0
        for line in lines:
            i = buffers.idx
            buffers.idx = (i + 1) % buf_n
            start = buf_free[i]
            if start < now:
                start = now
            buf_free[i] = start + hold
            if start > accept:
                accept = start
            # --- L2 service (inlined _l2_service) ---
            bank = line % l2_banks
            bstart = banks_free[bank]
            if bstart < start:
                bstart = start
            banks_free[bank] = bstart + bank_occ
            l2_lat = l2_lat_min + (bank + sm) % l2_span1
            l2_set = l2_sets[line % l2_nsets]
            l2_entry = l2_set.pop(line, -1)
            if l2_entry >= l2_live_min:
                l2_set[line] = l2_entry
                l2_hits += 1
                done = bstart + bank_occ + l2_lat
            else:
                l2_misses += 1
                if len(l2_set) >= l2_assoc:
                    if l2_live_min:
                        l2_install(line, VALID)
                    else:
                        del l2_set[next(iter(l2_set))]
                        l2_set[line] = VALID
                else:
                    l2_set[line] = l2_packed_valid
                channel = line % mem_channels
                mstart = channels_free[channel]
                issue = bstart + bank_occ
                if mstart < issue:
                    mstart = issue
                channels_free[channel] = mstart + mem_occ
                done = (mstart + mem_occ + mem_lat_min
                        + (bank + sm) % mem_span1 + l2_lat)
            if done > drain:
                drain = done
        stats = self.stats
        stats.stores += len(lines)
        stats.l2_hits += l2_hits
        stats.l2_misses += l2_misses
        return accept, drain

    # ------------------------------------------------------------------
    # Batched loads/stores for the lockstep engine.  The key structural
    # fact: cache entries are packed ``(epoch << 2) | state`` with no
    # timestamps, so *presence* (hit/miss, LRU evolution, victim choice,
    # installs) is completely independent of *timing*.  Pass 1 walks the
    # accesses in order updating the dict-based cache state exactly as
    # the scalar method would, recording the miss stream; pass 2 replays
    # the order-dependent resource timelines (MSHR rings, L2 banks, DRAM
    # channels) as vectorized queue scans over that stream.  Both passes
    # preserve scalar order, so results are bit-identical by
    # construction.
    # ------------------------------------------------------------------
    def load_batch(
        self, sms: list, lines_seq: list, nows: list
    ) -> list:
        n_acc = len(sms)
        if n_acc < _BATCH_MIN:
            return MemorySystem.load_batch(self, sms, lines_seq, nows)
        cfg = self.config
        l1_lat = cfg.l1_hit_latency
        l1s = self.l1s
        l2 = self.l2
        l2_sets = l2._sets
        l2_nsets = l2.num_sets
        l2_assoc = l2.assoc
        l2_live_min = l2.valid_floor()
        l2_packed_valid = l2_live_min | VALID
        l2_install = l2.install
        hits = 0
        miss_lines: list = []
        append_line = miss_lines.append
        l2h: list = []
        append_l2h = l2h.append
        counts = [0] * n_acc
        # ---- pass 1: presence (dict state, exact scalar order) ----
        for i in range(n_acc):
            l1 = l1s[sms[i]]
            l1_sets = l1._sets
            l1_nsets = l1.num_sets
            l1_assoc = l1.assoc
            live_min = l1.valid_floor()
            packed_valid = live_min | VALID
            nmiss = 0
            for line in lines_seq[i]:
                cache_set = l1_sets[line % l1_nsets]
                entry = cache_set.pop(line, -1)
                if entry >= live_min:
                    cache_set[line] = entry
                    hits += 1
                    continue
                nmiss += 1
                append_line(line)
                l2_set = l2_sets[line % l2_nsets]
                l2_entry = l2_set.pop(line, -1)
                if l2_entry >= l2_live_min:
                    l2_set[line] = l2_entry
                    append_l2h(True)
                else:
                    append_l2h(False)
                    if len(l2_set) >= l2_assoc:
                        if l2_live_min:
                            l2_install(line, VALID)
                        else:
                            del l2_set[next(iter(l2_set))]
                            l2_set[line] = l2_packed_valid
                    else:
                        l2_set[line] = l2_packed_valid
                if len(cache_set) >= l1_assoc:
                    victim = None
                    if live_min:
                        for cand, cand_entry in cache_set.items():
                            if cand_entry < live_min:
                                victim = cand
                                break
                    if victim is None:
                        victim = next(iter(cache_set))
                    del cache_set[victim]
                cache_set[line] = packed_valid
            counts[i] = nmiss
        m = len(miss_lines)
        stats = self.stats
        stats.l1_hits += hits
        stats.l1_misses += m
        n_l2h = sum(l2h)
        stats.l2_hits += n_l2h
        stats.l2_misses += m - n_l2h
        now_f = np.asarray(nows, dtype=np.float64)
        res = now_f + l1_lat
        if not m:
            return res.tolist()
        # ---- pass 2: timing (vectorized queue scans) ----
        cnt = np.asarray(counts, dtype=np.int64)
        lines_arr = np.asarray(miss_lines, dtype=np.int64)
        sm_arr = np.repeat(np.asarray(sms, dtype=np.int64), cnt)
        now_arr = np.repeat(now_f, cnt)
        l2_lat_min = cfg.l2_latency_min
        mshr_start = np.empty(m, dtype=np.float64)
        for sm in np.unique(sm_arr).tolist():
            sel = sm_arr == sm
            mshr_start[sel] = ring_scan(
                self._mshrs[sm], now_arr[sel], l2_lat_min)
        bank_occ = cfg.l2_bank_occupancy
        banks = lines_arr % self._l2_banks
        bstart = queue_scan(banks, mshr_start, self._l2_bank_free, bank_occ)
        l2_lat = l2_lat_min + (banks + sm_arr) % self._l2_span1
        done = bstart + bank_occ + l2_lat + l1_lat
        l2h_arr = np.asarray(l2h, dtype=bool)
        mi = np.flatnonzero(~l2h_arr)
        if mi.size:
            mem_occ = self._mem_occupancy
            channels = lines_arr[mi] % self._mem_channels
            mstart = queue_scan(channels, bstart[mi] + bank_occ,
                                self._mem_channel_free, mem_occ)
            done[mi] = (mstart + mem_occ + self._mem_lat_min
                        + (banks[mi] + sm_arr[mi]) % self._mem_span1
                        + l2_lat[mi] + l1_lat)
        nz = np.flatnonzero(cnt)
        seg_starts = (np.cumsum(cnt) - cnt)[nz]
        res[nz] = np.maximum(res[nz],
                             np.maximum.reduceat(done, seg_starts))
        return res.tolist()

    def store_batch(
        self, sms: list, lines_seq: list, nows: list
    ) -> tuple[list, list]:
        n_acc = len(sms)
        if n_acc < _BATCH_MIN:
            return MemorySystem.store_batch(self, sms, lines_seq, nows)
        cfg = self.config
        l2 = self.l2
        l2_sets = l2._sets
        l2_nsets = l2.num_sets
        l2_assoc = l2.assoc
        l2_live_min = l2.valid_floor()
        l2_packed_valid = l2_live_min | VALID
        l2_install = l2.install
        all_lines: list = []
        append_line = all_lines.append
        l2h: list = []
        append_l2h = l2h.append
        counts = [0] * n_acc
        # ---- pass 1: L2 presence (stores are no-allocate in the L1) ----
        for i in range(n_acc):
            lines = lines_seq[i]
            counts[i] = len(lines)
            for line in lines:
                append_line(line)
                l2_set = l2_sets[line % l2_nsets]
                l2_entry = l2_set.pop(line, -1)
                if l2_entry >= l2_live_min:
                    l2_set[line] = l2_entry
                    append_l2h(True)
                else:
                    append_l2h(False)
                    if len(l2_set) >= l2_assoc:
                        if l2_live_min:
                            l2_install(line, VALID)
                        else:
                            del l2_set[next(iter(l2_set))]
                            l2_set[line] = l2_packed_valid
                    else:
                        l2_set[line] = l2_packed_valid
        m = len(all_lines)
        stats = self.stats
        stats.stores += m
        n_l2h = sum(l2h)
        stats.l2_hits += n_l2h
        stats.l2_misses += m - n_l2h
        now_f = np.asarray(nows, dtype=np.float64)
        if not m:
            res = now_f.tolist()
            return res, list(res)
        # ---- pass 2: timing ----
        cnt = np.asarray(counts, dtype=np.int64)
        lines_arr = np.asarray(all_lines, dtype=np.int64)
        sm_arr = np.repeat(np.asarray(sms, dtype=np.int64), cnt)
        now_arr = np.repeat(now_f, cnt)
        l2_lat_min = cfg.l2_latency_min
        bank_occ = cfg.l2_bank_occupancy
        buf_hold = l2_lat_min + bank_occ
        buf_start = np.empty(m, dtype=np.float64)
        for sm in np.unique(sm_arr).tolist():
            sel = sm_arr == sm
            buf_start[sel] = ring_scan(
                self._store_buffers[sm], now_arr[sel], buf_hold)
        banks = lines_arr % self._l2_banks
        bstart = queue_scan(banks, buf_start, self._l2_bank_free, bank_occ)
        l2_lat = l2_lat_min + (banks + sm_arr) % self._l2_span1
        done = bstart + bank_occ + l2_lat
        l2h_arr = np.asarray(l2h, dtype=bool)
        mi = np.flatnonzero(~l2h_arr)
        if mi.size:
            mem_occ = self._mem_occupancy
            channels = lines_arr[mi] % self._mem_channels
            mstart = queue_scan(channels, bstart[mi] + bank_occ,
                                self._mem_channel_free, mem_occ)
            done[mi] = (mstart + mem_occ + self._mem_lat_min
                        + (banks[mi] + sm_arr[mi]) % self._mem_span1
                        + l2_lat[mi])
        accepts = now_f.copy()
        drains = now_f.copy()
        nz = np.flatnonzero(cnt)
        seg_starts = (np.cumsum(cnt) - cnt)[nz]
        accepts[nz] = np.maximum(
            accepts[nz], np.maximum.reduceat(buf_start, seg_starts))
        drains[nz] = np.maximum(
            drains[nz], np.maximum.reduceat(done, seg_starts))
        return accepts.tolist(), drains.tolist()

    # ------------------------------------------------------------------
    # Deferred-timing accesses (see MemorySystem.defer_load for the
    # contract).  The presence halves below are the pass-1 bodies of
    # `load_batch` / `atomic_round` for a single access; the timing
    # halves are precomputed latency constants on the shared event
    # stream, settled by `flush_deferred` via `_flush_timing`.
    # ------------------------------------------------------------------
    def defer_load(self, sm: int, lines: tuple, now: float) -> float | None:
        # Uncontended fast path: with no unsettled miss on this SM's
        # MSHR ring and no unsettled event on any of this load's banks
        # or channels (conservatively checked for hits too), the scalar
        # path books every queue in defer order exactly — nothing
        # earlier is outstanding, and later defers queue behind the
        # bookings made here.
        if not self._d_force:
            if not self._d_ev:
                return self.load(sm, lines, now)
            if not self._d_pend_mshr[sm]:
                pend_bank = self._d_pend_bank
                pend_chan = self._d_pend_chan
                l2_banks = self._l2_banks
                mem_channels = self._mem_channels
                for line in lines:
                    if (pend_bank[line % l2_banks]
                            or pend_chan[line % mem_channels]):
                        break
                else:
                    return self.load(sm, lines, now)
        pend_bank = self._d_pend_bank
        pend_chan = self._d_pend_chan
        l2_banks = self._l2_banks
        mem_channels = self._mem_channels
        l1 = self.l1s[sm]
        l1_sets = l1._sets
        l1_nsets = l1.num_sets
        l1_assoc = l1.assoc
        live_min = l1._valid_epoch << 2
        packed_valid = live_min | VALID
        l2 = self.l2
        l2_sets = l2._sets
        l2_nsets = l2.num_sets
        l2_assoc = l2.assoc
        l2_live_min = l2._valid_epoch << 2
        l2_packed_valid = l2_live_min | VALID
        l2_span1 = self._l2_span1
        l2_lat_min = self._l2_lat_min
        bank_occ = self.config.l2_bank_occupancy
        l1_lat = self.config.l1_hit_latency
        ev = self._d_ev
        hits = 0
        nmiss = 0
        l2_hits = 0
        lbx = 0.0
        for line in lines:
            cache_set = l1_sets[line % l1_nsets]
            entry = cache_set.pop(line, -1)
            if entry >= live_min:
                cache_set[line] = entry
                hits += 1
                continue
            nmiss += 1
            bank = line % l2_banks
            l2_lat = l2_lat_min + (bank + sm) % l2_span1
            l2_set = l2_sets[line % l2_nsets]
            l2_entry = l2_set.pop(line, -1)
            if l2_entry >= l2_live_min:
                l2_set[line] = l2_entry
                l2_hits += 1
                post = l2_lat + l1_lat
                ev.append((bank, 0.0, 1, bank_occ, -1, post, 0.0))
                pend_bank[bank] += 1
                if post > lbx:
                    lbx = post
            else:
                if len(l2_set) >= l2_assoc:
                    if l2_live_min:
                        self.l2.install(line, VALID)
                    else:
                        del l2_set[next(iter(l2_set))]
                        l2_set[line] = VALID
                else:
                    l2_set[line] = l2_packed_valid
                chan = line % mem_channels
                mext = (self._mem_lat_min + (bank + sm) % self._mem_span1
                        + l2_lat + l1_lat)
                ev.append((bank, 0.0, 1, bank_occ, chan, 0.0, mext))
                pend_bank[bank] += 1
                pend_chan[chan] += 1
                v = self._mem_occupancy + mext
                if v > lbx:
                    lbx = v
            if len(cache_set) >= l1_assoc:
                victim = None
                if live_min:
                    for cand, cand_entry in cache_set.items():
                        if cand_entry < live_min:
                            victim = cand
                            break
                if victim is None:
                    victim = next(iter(cache_set))
                del cache_set[victim]
            cache_set[line] = packed_valid
        stats = self.stats
        stats.l1_hits += hits
        if not nmiss:
            return now + l1_lat
        stats.l1_misses += nmiss
        stats.l2_hits += l2_hits
        stats.l2_misses += nmiss - l2_hits
        self._d_pend_mshr[sm] += nmiss
        self._d_l_rec.append((now, nmiss, sm))
        self._d_jobs.append(0)
        # Every miss's service is at least its MSHR start (>= now) plus
        # the bank hold plus its hit/DRAM latency tail, so the running
        # max over misses bounds the load's completion from below.
        self._d_lb = now + bank_occ + lbx
        return None

    def _atomic_uncontended(self, sm: int, pairs: tuple) -> bool:
        """True when every pair's bank, channel and sequencer is quiet.

        The channel check is conservative (hits never touch DRAM, but
        hit/miss is unknown before the presence pass).
        """
        if self._d_force:
            return False
        if not self._d_ev:
            return True
        pend_bank = self._d_pend_bank
        pend_chan = self._d_pend_chan
        seq_pending = self._d_seq_pending
        l2_banks = self._l2_banks
        mem_channels = self._mem_channels
        for line, _count in pairs:
            if (pend_bank[line % l2_banks]
                    or pend_chan[line % mem_channels]
                    or line in seq_pending):
                return False
        return True

    def _defer_atomic_events(self, sm: int, pairs: tuple, issue: float):
        """Presence half of one atomic instruction; records its events.

        Returns ``(e0, lanes, lb_hold, lb_path, lb_last)``: the first
        event index, the lane count, and completion lower-bound terms —
        ``lb_hold`` maxes ``hold + latency`` over pairs (every pair
        starts at or after the program-order floor), ``lb_path`` maxes
        the issue-anchored service tail, and ``lb_last`` is the final
        pair's issue-anchored tail (the window settle's return value).
        """
        atomic_occ = self.config.atomic_occupancy
        l2_banks = self._l2_banks
        l2_span1 = self._l2_span1
        l2_lat_min = self._l2_lat_min
        mem_occ = self._mem_occupancy
        l2 = self.l2
        l2_sets = l2._sets
        l2_nsets = l2.num_sets
        l2_assoc = l2.assoc
        l2_live_min = l2._valid_epoch << 2
        l2_packed_valid = l2_live_min | VALID
        ev = self._d_ev
        pend_bank = self._d_pend_bank
        pend_chan = self._d_pend_chan
        seq_pending = self._d_seq_pending
        e0 = len(ev)
        lanes = 0
        l2_hits = 0
        l2_misses = 0
        lb_hold = 0.0
        lb_path = 0.0
        lb_last = 0.0
        for line, count in pairs:
            lanes += count
            bank = line % l2_banks
            hold = count * atomic_occ
            latency = l2_lat_min + (bank + sm) % l2_span1
            seq_pending.add(line)
            pend_bank[bank] += 1
            l2_set = l2_sets[line % l2_nsets]
            l2_entry = l2_set.pop(line, -1)
            if l2_entry >= l2_live_min:
                l2_set[line] = l2_entry
                l2_hits += 1
                ev.append((bank, issue, 0, hold, -1, latency, 0.0))
                lb_last = hold + latency
            else:
                l2_misses += 1
                if len(l2_set) >= l2_assoc:
                    if l2_live_min:
                        l2.install(line, VALID)
                    else:
                        del l2_set[next(iter(l2_set))]
                        l2_set[line] = VALID
                else:
                    l2_set[line] = l2_packed_valid
                chan = line % self._mem_channels
                mext = (self._mem_lat_min
                        + (bank + sm) % self._mem_span1 + latency)
                ev.append((bank, issue, 0, hold, chan, 0.0, mext))
                pend_chan[chan] += 1
                lb_last = hold + mem_occ + mext
            v = hold + latency
            if v > lb_hold:
                lb_hold = v
            if lb_last > lb_path:
                lb_path = lb_last
        stats = self.stats
        stats.atomics += lanes
        stats.l2_hits += l2_hits
        stats.l2_misses += l2_misses
        return e0, lanes, lb_hold, lb_path, lb_last

    def defer_atomic(
        self, sm: int, pairs: tuple, floor: float, issue: float
    ) -> tuple[float | None, int, float]:
        if self._atomic_uncontended(sm, pairs):
            done, lanes = self.atomic_round(sm, pairs, floor, issue)
            return done, lanes, 0.0
        e0, lanes, lb_hold, lb_path, _ = self._defer_atomic_events(
            sm, pairs, issue)
        self._d_jobs.append((1, sm, floor, pairs, e0))
        lb = floor + lb_hold
        v = issue + lb_path
        if v > lb:
            lb = v
        self._d_lb = lb
        return None, lanes, lb

    def defer_atomic_window(
        self, sm: int, pairs: tuple, now: float,
        outstanding: list, window: int,
    ) -> tuple[float | None, float | None, float]:
        if (id(outstanding) not in self._d_win_ids
                and self._atomic_uncontended(sm, pairs)):
            t, last = self.atomic_window(sm, pairs, now, outstanding,
                                         window)
            return t, last, 0.0
        e0, _, _, _, lb_last = self._defer_atomic_events(sm, pairs, now)
        self._d_jobs.append((2, sm, now, pairs, outstanding, window, e0))
        self._d_win_ids.add(id(outstanding))
        # The settle returns the final pair's completion, which is at
        # least its issue-anchored service tail.
        lb = now + lb_last
        self._d_lb = lb
        return None, None, lb

    def flush_deferred(self) -> list:
        jobs = self._d_jobs
        if not jobs:
            return []
        self._d_jobs = []
        self._d_seq_pending.clear()
        self._d_win_ids.clear()
        service, load_res = self._flush_timing()
        atomic_occ = self.config.atomic_occupancy
        l2_banks = self._l2_banks
        l2_span1 = self._l2_span1
        l2_lat_min = self._l2_lat_min
        sequencer = self.sequencer
        seq_get = sequencer.get
        out = []
        li = 0
        for job in jobs:
            if job == 0:
                out.append(load_res[li])
                li += 1
            elif job[0] == 1:
                _, sm, floor, pairs, e0 = job
                done = floor
                for j, (line, count) in enumerate(pairs):
                    hold = count * atomic_occ
                    bank = line % l2_banks
                    latency = l2_lat_min + (bank + sm) % l2_span1
                    start = service[e0 + j] - latency - hold
                    seq = seq_get(line, 0.0)
                    if seq > start:
                        start = seq
                    if floor > start:
                        start = floor
                    sequencer[line] = start + hold
                    completion = start + hold + latency
                    if completion > done:
                        done = completion
                out.append(done)
            else:
                _, sm, now, pairs, outstanding, window, e0 = job
                t = now
                last = now
                for j, (line, count) in enumerate(pairs):
                    while outstanding and outstanding[0] <= t:
                        del outstanding[0]
                    if len(outstanding) >= window:
                        t = outstanding.pop(0)
                    hold = count * atomic_occ
                    bank = line % l2_banks
                    latency = l2_lat_min + (bank + sm) % l2_span1
                    start = service[e0 + j] - latency - hold
                    seq = seq_get(line, 0.0)
                    if seq > start:
                        start = seq
                    if t > start:
                        start = t
                    sequencer[line] = start + hold
                    completion = start + hold + latency
                    if completion > last:
                        last = completion
                    insort(outstanding, completion)
                out.append(last)
        return out

    def atomic(
        self, sm: int, line: int, count: int, now: float,
        issue: float | None = None,
    ) -> float:
        cfg = self.config
        if issue is None:
            issue = now
        stats = self.stats
        stats.atomics += count
        hold = count * cfg.atomic_occupancy
        # Bank occupancy and a possible memory fill are booked at issue
        # time (requests travel immediately; same-line fills coalesce in
        # the L2 MSHRs).  The RMW itself waits for the program-order
        # floor and for prior RMWs to the same line.  The L2 service is
        # inlined as in `load` (atomics are the push hot path).
        bank = line % self._l2_banks
        banks_free = self._l2_bank_free
        bstart = banks_free[bank]
        if bstart < issue:
            bstart = issue
        banks_free[bank] = bstart + hold
        latency = self._l2_lat_min + (bank + sm) % self._l2_span1
        l2 = self.l2
        l2_set = l2._sets[line % l2.num_sets]
        l2_entry = l2_set.pop(line, None)
        if l2_entry is not None and l2_entry >= l2._valid_epoch << 2:
            l2_set[line] = l2_entry
            stats.l2_hits += 1
            service_ready = bstart + hold + latency
        else:
            stats.l2_misses += 1
            if len(l2_set) >= l2.assoc:
                if l2._valid_epoch or l2._all_epoch:
                    l2.install(line, VALID)
                else:
                    del l2_set[next(iter(l2_set))]
                    l2_set[line] = VALID
            else:
                l2_set[line] = (l2._valid_epoch << 2) | VALID
            channels_free = self._mem_channel_free
            channel = line % self._mem_channels
            mstart = channels_free[channel]
            mem_issue = bstart + hold
            if mstart < mem_issue:
                mstart = mem_issue
            mem_occ = self._mem_occupancy
            channels_free[channel] = mstart + mem_occ
            service_ready = (mstart + mem_occ + self._mem_lat_min
                             + (bank + sm) % self._mem_span1 + latency)
        # When the bank's RMW slot begins (fills overlap approximately).
        start = service_ready - latency - hold
        seq = self.sequencer.get(line, 0.0)
        if seq > start:
            start = seq
        if now > start:
            start = now
        self.sequencer[line] = start + hold
        return start + hold + latency

    def acquire(self, sm: int) -> int:
        self.stats.acquires += 1
        self.l1s[sm].invalidate_all()
        return self.config.l1_hit_latency

    # ------------------------------------------------------------------
    # Batched atomics: one call per warp atomic instruction, with the
    # per-pair L2-side service of `atomic` inlined so the ~dozen local
    # bindings are paid once per instruction instead of once per line.
    # Semantics are defined by the base-class reference implementations.
    # ------------------------------------------------------------------
    def atomic_round(
        self, sm: int, pairs: tuple, floor: float, issue: float
    ) -> tuple[float, int]:
        atomic_occ = self.config.atomic_occupancy
        l2_banks = self._l2_banks
        l2_span1 = self._l2_span1
        l2_lat_min = self._l2_lat_min
        banks_free = self._l2_bank_free
        l2 = self.l2
        l2_sets = l2._sets
        l2_nsets = l2.num_sets
        l2_assoc = l2.assoc
        l2_live_min = l2._valid_epoch << 2
        l2_packed_valid = l2_live_min | VALID
        l2_install = l2.install
        mem_channels = self._mem_channels
        mem_lat_min = self._mem_lat_min
        mem_span1 = self._mem_span1
        mem_occ = self._mem_occupancy
        channels_free = self._mem_channel_free
        sequencer = self.sequencer
        seq_get = sequencer.get
        done = floor
        lanes = 0
        l2_hits = 0
        l2_misses = 0
        for line, count in pairs:
            lanes += count
            hold = count * atomic_occ
            bank = line % l2_banks
            bstart = banks_free[bank]
            if bstart < issue:
                bstart = issue
            banks_free[bank] = bstart + hold
            latency = l2_lat_min + (bank + sm) % l2_span1
            l2_set = l2_sets[line % l2_nsets]
            l2_entry = l2_set.pop(line, -1)
            if l2_entry >= l2_live_min:
                l2_set[line] = l2_entry
                l2_hits += 1
                service_ready = bstart + hold + latency
            else:
                l2_misses += 1
                if len(l2_set) >= l2_assoc:
                    if l2_live_min:
                        l2_install(line, VALID)
                    else:
                        del l2_set[next(iter(l2_set))]
                        l2_set[line] = VALID
                else:
                    l2_set[line] = l2_packed_valid
                channel = line % mem_channels
                mstart = channels_free[channel]
                mem_issue = bstart + hold
                if mstart < mem_issue:
                    mstart = mem_issue
                channels_free[channel] = mstart + mem_occ
                service_ready = (mstart + mem_occ + mem_lat_min
                                 + (bank + sm) % mem_span1 + latency)
            start = service_ready - latency - hold
            seq = seq_get(line, 0.0)
            if seq > start:
                start = seq
            if floor > start:
                start = floor
            sequencer[line] = start + hold
            completion = start + hold + latency
            if completion > done:
                done = completion
        stats = self.stats
        stats.atomics += lanes
        stats.l2_hits += l2_hits
        stats.l2_misses += l2_misses
        return done, lanes

    def atomic_window(
        self, sm: int, pairs: tuple, now: float,
        outstanding: list, window: int,
    ) -> tuple[float, float]:
        atomic_occ = self.config.atomic_occupancy
        l2_banks = self._l2_banks
        l2_span1 = self._l2_span1
        l2_lat_min = self._l2_lat_min
        banks_free = self._l2_bank_free
        l2 = self.l2
        l2_sets = l2._sets
        l2_nsets = l2.num_sets
        l2_assoc = l2.assoc
        l2_live_min = l2._valid_epoch << 2
        l2_packed_valid = l2_live_min | VALID
        l2_install = l2.install
        mem_channels = self._mem_channels
        mem_lat_min = self._mem_lat_min
        mem_span1 = self._mem_span1
        mem_occ = self._mem_occupancy
        channels_free = self._mem_channel_free
        sequencer = self.sequencer
        seq_get = sequencer.get
        t = now
        last = now
        lanes = 0
        l2_hits = 0
        l2_misses = 0
        for line, count in pairs:
            while outstanding and outstanding[0] <= t:
                del outstanding[0]
            if len(outstanding) >= window:
                t = outstanding.pop(0)
            lanes += count
            hold = count * atomic_occ
            bank = line % l2_banks
            bstart = banks_free[bank]
            if bstart < now:
                bstart = now
            banks_free[bank] = bstart + hold
            latency = l2_lat_min + (bank + sm) % l2_span1
            l2_set = l2_sets[line % l2_nsets]
            l2_entry = l2_set.pop(line, -1)
            if l2_entry >= l2_live_min:
                l2_set[line] = l2_entry
                l2_hits += 1
                service_ready = bstart + hold + latency
            else:
                l2_misses += 1
                if len(l2_set) >= l2_assoc:
                    if l2_live_min:
                        l2_install(line, VALID)
                    else:
                        del l2_set[next(iter(l2_set))]
                        l2_set[line] = VALID
                else:
                    l2_set[line] = l2_packed_valid
                channel = line % mem_channels
                mstart = channels_free[channel]
                mem_issue = bstart + hold
                if mstart < mem_issue:
                    mstart = mem_issue
                channels_free[channel] = mstart + mem_occ
                service_ready = (mstart + mem_occ + mem_lat_min
                                 + (bank + sm) % mem_span1 + latency)
            start = service_ready - latency - hold
            seq = seq_get(line, 0.0)
            if seq > start:
                start = seq
            if t > start:
                start = t
            sequencer[line] = start + hold
            completion = start + hold + latency
            if completion > last:
                last = completion
            insort(outstanding, completion)
        stats = self.stats
        stats.atomics += lanes
        stats.l2_hits += l2_hits
        stats.l2_misses += l2_misses
        return t, last
