"""Memory-system base: shared structure for both coherence protocols.

The memory system owns the per-SM L1s, the shared banked L2, the MSHR and
store-buffer resource models, the per-line atomic sequencers, and the
DeNovo ownership directory.  Protocol subclasses implement the latency
policy for loads, stores, atomics, and acquires.

Resource modeling: MSHRs and store-buffer entries are FIFO-recycled rings
of free-at times — reserving a slot that is still busy pushes the request
out to the slot's free time.  Per-line sequencers serialize atomic
operations to the same address, wherever they execute (L2 bank for GPU
coherence, owning L1 for DeNovo).
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field, fields

from ..cache import OWNED, VALID, SetAssocCache
from ..config import SystemConfig

__all__ = ["MemoryStats", "MemorySystem"]


@dataclass
class MemoryStats:
    """Event counters exposed for tests and analyses."""

    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    stores: int = 0
    atomics: int = 0
    atomics_local: int = 0
    atomics_remote_transfer: int = 0
    ownership_registrations: int = 0
    acquires: int = 0
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-safe mapping of every counter (``extra`` copied)."""
        data = {f.name: getattr(self, f.name) for f in fields(self)
                if f.name != "extra"}
        data["extra"] = dict(self.extra)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "MemoryStats":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown MemoryStats fields: {sorted(unknown)}")
        payload = dict(data)
        payload["extra"] = dict(payload.get("extra", {}))
        return cls(**payload)


class _Ring:
    """FIFO-recycled pool of ``n`` resource slots holding free-at times."""

    __slots__ = ("free_at", "idx", "n")

    def __init__(self, n: int) -> None:
        self.free_at = [0.0] * n
        self.idx = 0
        self.n = n

    def reserve(self, now: float, hold: float) -> float:
        """Claim the next slot; return the (possibly delayed) start time."""
        i = self.idx
        self.idx = (i + 1) % self.n
        start = self.free_at[i]
        if start < now:
            start = now
        self.free_at[i] = start + hold
        return start


class MemorySystem:
    """Shared skeleton of the two coherence protocols."""

    name = "base"

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.stats = MemoryStats()
        self.l1s = [
            SetAssocCache(config.l1_lines, config.l1_assoc)
            for _ in range(config.num_sms)
        ]
        self.l2 = SetAssocCache(config.l2_lines, config.l2_assoc)
        self.owner: dict[int, int] = {}
        self.sequencer: dict[int, float] = {}
        self._mshrs = [_Ring(config.l1_mshrs) for _ in range(config.num_sms)]
        self._store_buffers = [
            _Ring(config.store_buffer_entries) for _ in range(config.num_sms)
        ]
        self._l2_bank_free = [0.0] * config.l2_banks
        self._mem_channel_free = [0.0] * config.mem_channels
        # Per-SM L1 atomic unit (DeNovo executes atomics at the owner L1,
        # which is a throughput-limited resource just like an L2 bank).
        self._l1_atomic_free = [0.0] * config.num_sms
        # Latency-model constants, predigested so the per-line service
        # loops do integer arithmetic instead of SystemConfig method
        # calls.  `% span1` with span1 == 1 yields 0, so the zero-span
        # special case in SystemConfig collapses into the same formula.
        self._l2_banks = config.l2_banks
        self._mem_channels = config.mem_channels
        self._l2_lat_min = config.l2_latency_min
        self._l2_span1 = config.l2_latency_max - config.l2_latency_min + 1
        self._mem_lat_min = config.mem_latency_min
        self._mem_span1 = config.mem_latency_max - config.mem_latency_min + 1
        self._rl1_min = config.remote_l1_latency_min
        self._rl1_span1 = (config.remote_l1_latency_max
                           - config.remote_l1_latency_min + 1)
        self._mem_occupancy = config.mem_occupancy

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _l2_service(
        self, sm: int, line: int, now: float, hold: float
    ) -> float:
        """Service an access at the line's home L2 bank.

        Models both latency (NUCA distance, memory fill) and throughput
        (bank occupancy, DRAM channel occupancy).  Returns the time the
        response reaches the requesting core.
        """
        bank = line % self._l2_banks
        banks_free = self._l2_bank_free
        start = banks_free[bank]
        if start < now:
            start = now
        banks_free[bank] = start + hold
        l2_lat = self._l2_lat_min + (bank + sm) % self._l2_span1
        # L2 lookup + VALID install, inlined (this is the hottest call in
        # the simulator).  The epoch checks mirror SetAssocCache.lookup;
        # on a miss the line is known absent (pop above removed any stale
        # entry), and no protocol ever epoch-invalidates the shared L2,
        # so the stale-victim scan is unnecessary.
        l2 = self.l2
        cache_set = l2._sets[line % l2.num_sets]
        entry = cache_set.pop(line, None)
        valid_epoch = l2._valid_epoch
        all_epoch = l2._all_epoch
        if entry is not None:
            epoch = entry >> 2
            if epoch >= all_epoch and (
                entry & 3 != VALID or epoch >= valid_epoch
            ):
                cache_set[line] = entry
                self.stats.l2_hits += 1
                return start + hold + l2_lat
        self.stats.l2_misses += 1
        if len(cache_set) >= l2.assoc:
            if valid_epoch or all_epoch:
                l2.install(line, VALID)
            else:
                del cache_set[next(iter(cache_set))]
                cache_set[line] = VALID
        else:
            epoch = valid_epoch if valid_epoch > all_epoch else all_epoch
            cache_set[line] = (epoch << 2) | VALID
        channels_free = self._mem_channel_free
        channel = line % self._mem_channels
        mem_start = channels_free[channel]
        issue = start + hold
        if mem_start < issue:
            mem_start = issue
        mem_occ = self._mem_occupancy
        channels_free[channel] = mem_start + mem_occ
        return (mem_start + mem_occ
                + self._mem_lat_min + (bank + sm) % self._mem_span1
                + l2_lat)

    def _install_l1(
        self, sm: int, line: int, state: int, now: float = 0.0
    ) -> None:
        evicted = self.l1s[sm].install(line, state)
        if evicted is not None and evicted[1] == OWNED:
            # Writing back an owned line returns registration to the L2:
            # the victim's data and directory update occupy its home bank.
            # This is the churn that makes ownership unprofitable when the
            # working set thrashes the L1 (Section IV-A2's high-volume
            # argument against DeNovo).
            victim = evicted[0]
            self.owner.pop(victim, None)
            bank = victim % self.config.l2_banks
            start = self._l2_bank_free[bank]
            if start < now:
                start = now
            self._l2_bank_free[bank] = start + self.config.l2_bank_occupancy
            self.stats.extra["owned_writebacks"] = (
                self.stats.extra.get("owned_writebacks", 0) + 1
            )

    def _serialize(self, line: int, earliest: float, hold: float) -> float:
        """Queue on the line's atomic sequencer; return operation start."""
        start = self.sequencer.get(line, 0.0)
        if start < earliest:
            start = earliest
        self.sequencer[line] = start + hold
        return start

    # ------------------------------------------------------------------
    # Protocol interface (subclasses implement)
    # ------------------------------------------------------------------
    def load(self, sm: int, lines: tuple, now: float) -> float:
        """Blocking coalesced load; returns data-arrival time."""
        raise NotImplementedError

    def store(self, sm: int, lines: tuple, now: float) -> tuple[float, float]:
        """Non-blocking store; returns (warp-accept time, global-drain time)."""
        raise NotImplementedError

    def atomic(
        self, sm: int, line: int, count: int, now: float,
        issue: float | None = None,
    ) -> float:
        """Atomic RMWs to one line; returns result-return time.

        ``now`` is the earliest the operation may logically execute (the
        consistency model's program-order floor); ``issue`` is when the
        warp issued the instruction.  Shared-resource contention (banks,
        DRAM channels, atomic units) is booked at ``issue`` so that a
        warp ordered far into the future does not reserve hardware ahead
        of requests that arrive earlier in global time.
        """
        raise NotImplementedError

    def acquire(self, sm: int) -> int:
        """Apply acquire-side invalidation; return its pipeline cost."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Batched atomic entry points (subclasses override with specialized
    # loops; these reference implementations define the semantics).
    # ------------------------------------------------------------------
    def atomic_round(
        self, sm: int, pairs: tuple, floor: float, issue: float
    ) -> tuple[float, int]:
        """Service one warp atomic instruction's ``(line, count)`` pairs.

        Every pair issues at ``issue`` with program-order floor ``floor``
        (the pairs belong to different lanes, so they are concurrent).
        Returns ``(done, lanes)``: the latest completion (at least
        ``floor``) and the total lane count.
        """
        atomic = self.atomic
        done = floor
        lanes = 0
        for line, count in pairs:
            lanes += count
            completion = atomic(sm, line, count, floor, issue=issue)
            if completion > done:
                done = completion
        return done, lanes

    def atomic_window(
        self, sm: int, pairs: tuple, now: float,
        outstanding: list, window: int,
    ) -> tuple[float, float]:
        """Service pairs through a DRFrlx MLP window.

        ``outstanding`` is the warp's sorted list of in-flight atomic
        completions, mutated in place.  A pair whose window is full
        blocks until the oldest in-flight completion retires.  Returns
        ``(t, last_completion)``: the issue floor after the final pair
        and the latest completion.
        """
        atomic = self.atomic
        t = now
        last = now
        for line, count in pairs:
            while outstanding and outstanding[0] <= t:
                del outstanding[0]
            if len(outstanding) >= window:
                t = outstanding.pop(0)
            completion = atomic(sm, line, count, t, issue=now)
            if completion > last:
                last = completion
            insort(outstanding, completion)
        return t, last
