"""Memory-system base: shared structure for both coherence protocols.

The memory system owns the per-SM L1s, the shared banked L2, the MSHR and
store-buffer resource models, the per-line atomic sequencers, and the
DeNovo ownership directory.  Protocol subclasses implement the latency
policy for loads, stores, atomics, and acquires.

Resource modeling: MSHRs and store-buffer entries are FIFO-recycled rings
of free-at times — reserving a slot that is still busy pushes the request
out to the slot's free time.  Per-line sequencers serialize atomic
operations to the same address, wherever they execute (L2 bank for GPU
coherence, owning L1 for DeNovo).
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field, fields

import numpy as np

from ..cache import OWNED, VALID, SetAssocCache
from ..config import SystemConfig

__all__ = ["MemoryStats", "MemorySystem"]

# Group separation for the segmented running max in `queue_scan`.  All
# simulated times are integer-valued floats far below 2**44, so adding
# ``key * _GROUP_OFFSET`` keeps groups disjoint and every sum exact in
# float64 (< 2**53); `queue_scan` guards the assumption at runtime.
_GROUP_OFFSET = float(1 << 45)
_TIME_CEILING = float(1 << 44)

# Below this many deferred timing events a flush replays the stream
# scalar-style: array setup would dominate the arithmetic.
_BATCH_MIN = 64


def queue_scan(keys, s, free_list, occ):
    """Vectorized serial-queue reservation grouped by resource key.

    Replays, exactly, the scalar in-order sequence::

        start_i = max(free[keys[i]], s[i]); free[keys[i]] = start_i + occ

    for a train of events over a small pool of resources (L2 banks, DRAM
    channels).  Per key the recurrence has the closed form
    ``start_i = i*occ + max(f0, max_{j<=i}(s_j - j*occ))``, computed for
    all keys at once with one segmented running max (groups separated by
    a large per-key offset — exact because every quantity is an
    integer-valued float far below 2**53).  ``free_list`` (a plain
    python list) is updated in place.  Returns the per-event starts.
    """
    m = keys.shape[0]
    starts = np.empty(m, dtype=np.float64)
    if not m:
        return starts
    if float(np.max(s)) >= _TIME_CEILING:
        # Astronomical timestamps would break group separation; fall
        # back to the literal scalar recurrence (never hit in practice).
        for i in range(m):
            key = int(keys[i])
            start = free_list[key]
            si = s[i]
            if start < si:
                start = si
            free_list[key] = start + occ
            starts[i] = start
        return starts
    order = np.argsort(keys, kind="stable")
    k = keys[order]
    sv = s[order]
    cnt = np.bincount(k, minlength=len(free_list))
    pos = (np.arange(m, dtype=np.float64)
           - (np.cumsum(cnt) - cnt)[k])
    shift = k * _GROUP_OFFSET
    run = np.maximum.accumulate(sv - pos * occ + shift) - shift
    f0 = np.asarray(free_list, dtype=np.float64)
    start_sorted = np.maximum(run, f0[k]) + pos * occ
    starts[order] = start_sorted
    ends = np.cumsum(cnt)
    for key in np.flatnonzero(cnt).tolist():
        free_list[key] = float(start_sorted[ends[key] - 1]) + occ
    return starts


def queue_scan_var(keys, s, holds, free_list):
    """`queue_scan` with a per-event hold instead of a uniform one.

    The closed form generalizes to
    ``start_i = H_i + max(f0, max_{j<=i}(s_j - H_j))`` where ``H`` is the
    *within-group* exclusive prefix sum of the holds and ``j`` ranges
    over the group's earlier events.  After the stable sort groups are
    contiguous, so ``H`` is the global exclusive prefix sum rebased to
    each group's first element (``f0`` enters un-shifted, so the
    previous groups' hold mass must not leak into ``H``).  The runtime
    guard additionally bounds the hold sum so the per-key group bands
    stay disjoint under the shared offset.
    """
    m = keys.shape[0]
    starts = np.empty(m, dtype=np.float64)
    if not m:
        return starts
    total_hold = float(np.sum(holds))
    if float(np.max(s)) + total_hold >= _TIME_CEILING or (
        free_list and max(free_list) >= _TIME_CEILING
    ):
        for i in range(m):
            key = int(keys[i])
            start = free_list[key]
            si = s[i]
            if start < si:
                start = si
            free_list[key] = start + holds[i]
            starts[i] = start
        return starts
    order = np.argsort(keys, kind="stable")
    k = keys[order]
    sv = s[order]
    hv = holds[order]
    hexcl = np.cumsum(hv) - hv
    first = np.empty(m, dtype=bool)
    first[0] = True
    np.not_equal(k[1:], k[:-1], out=first[1:])
    grp_first = np.flatnonzero(first)
    sizes = np.diff(np.append(grp_first, m))
    hexcl -= np.repeat(hexcl[grp_first], sizes)
    shift = k * _GROUP_OFFSET
    run = np.maximum.accumulate(sv - hexcl + shift) - shift
    f0 = np.asarray(free_list, dtype=np.float64)
    start_sorted = np.maximum(run, f0[k]) + hexcl
    starts[order] = start_sorted
    cnt = np.bincount(k, minlength=len(free_list))
    ends = np.cumsum(cnt)
    for key in np.flatnonzero(cnt).tolist():
        i = ends[key] - 1
        free_list[key] = float(start_sorted[i] + hv[i])
    return starts


def ring_scan(ring, s, hold):
    """Vectorized :meth:`_Ring.reserve` over an in-order request train.

    Slot assignment is round-robin, so the i-th request takes slot
    ``(idx + i) % n`` — within any window of ``n`` consecutive requests
    the slots are distinct and their reservations independent; only a
    wrap re-reads a slot written earlier in the same call.  Processing
    in chunks of ``n`` therefore reproduces the scalar sequence exactly.
    """
    n = ring.n
    free = np.asarray(ring.free_at, dtype=np.float64)
    m = s.shape[0]
    slots = (ring.idx + np.arange(m, dtype=np.int64)) % n
    starts = np.empty(m, dtype=np.float64)
    for c0 in range(0, m, n):
        c1 = c0 + n
        if c1 > m:
            c1 = m
        sl = slots[c0:c1]
        st = np.maximum(free[sl], s[c0:c1])
        starts[c0:c1] = st
        free[sl] = st + hold
    ring.free_at = free.tolist()
    ring.idx = (ring.idx + m) % n
    return starts


@dataclass
class MemoryStats:
    """Event counters exposed for tests and analyses."""

    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    stores: int = 0
    atomics: int = 0
    atomics_local: int = 0
    atomics_remote_transfer: int = 0
    ownership_registrations: int = 0
    acquires: int = 0
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-safe mapping of every counter (``extra`` copied)."""
        data = {f.name: getattr(self, f.name) for f in fields(self)
                if f.name != "extra"}
        data["extra"] = dict(self.extra)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "MemoryStats":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown MemoryStats fields: {sorted(unknown)}")
        payload = dict(data)
        payload["extra"] = dict(payload.get("extra", {}))
        return cls(**payload)


class _Ring:
    """FIFO-recycled pool of ``n`` resource slots holding free-at times."""

    __slots__ = ("free_at", "idx", "n")

    def __init__(self, n: int) -> None:
        self.free_at = [0.0] * n
        self.idx = 0
        self.n = n

    def reserve(self, now: float, hold: float) -> float:
        """Claim the next slot; return the (possibly delayed) start time."""
        i = self.idx
        self.idx = (i + 1) % self.n
        start = self.free_at[i]
        if start < now:
            start = now
        self.free_at[i] = start + hold
        return start


class MemorySystem:
    """Shared skeleton of the two coherence protocols."""

    name = "base"

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.stats = MemoryStats()
        self.l1s = [
            SetAssocCache(config.l1_lines, config.l1_assoc)
            for _ in range(config.num_sms)
        ]
        self.l2 = SetAssocCache(config.l2_lines, config.l2_assoc)
        self.owner: dict[int, int] = {}
        self.sequencer: dict[int, float] = {}
        self._mshrs = [_Ring(config.l1_mshrs) for _ in range(config.num_sms)]
        self._store_buffers = [
            _Ring(config.store_buffer_entries) for _ in range(config.num_sms)
        ]
        self._l2_bank_free = [0.0] * config.l2_banks
        self._mem_channel_free = [0.0] * config.mem_channels
        # Per-SM L1 atomic unit (DeNovo executes atomics at the owner L1,
        # which is a throughput-limited resource just like an L2 bank).
        self._l1_atomic_free = [0.0] * config.num_sms
        # Latency-model constants, predigested so the per-line service
        # loops do integer arithmetic instead of SystemConfig method
        # calls.  `% span1` with span1 == 1 yields 0, so the zero-span
        # special case in SystemConfig collapses into the same formula.
        self._l2_banks = config.l2_banks
        self._mem_channels = config.mem_channels
        self._l2_lat_min = config.l2_latency_min
        self._l2_span1 = config.l2_latency_max - config.l2_latency_min + 1
        self._mem_lat_min = config.mem_latency_min
        self._mem_span1 = config.mem_latency_max - config.mem_latency_min + 1
        self._rl1_min = config.remote_l1_latency_min
        self._rl1_span1 = (config.remote_l1_latency_max
                           - config.remote_l1_latency_min + 1)
        self._mem_occupancy = config.mem_occupancy
        # Deferred-load state for the batched engine (see `defer_load`).
        # `defer_floor` is a sound lower bound on a deferred access's
        # completion relative to its issue time: the cheapest miss path
        # pays one bank occupancy, the minimum L2 latency, and the L1
        # fill (DeNovo's forwarded path swaps the L2 latency for the
        # strictly larger remote-L1 minimum).
        self.defer_floor = (config.l2_bank_occupancy + config.l2_latency_min
                            + config.l1_hit_latency)
        # The cheapest deferred *atomic* pays one atomic occupancy and
        # the minimum L2 latency past its issue/floor.
        self.atomic_defer_floor = (config.atomic_occupancy
                                   + config.l2_latency_min)
        # Unified deferred-timing state.  Every deferred access appends
        # one *job* (settled in defer order by `flush_deferred`) plus
        # zero or more *timing events* — one tuple
        #   (bank, s, mshr, hold, chan, post, mext)
        # per bank reservation in exact call order, carrying precomputed
        # latency constants so the flush can turn queue starts into
        # completions without re-touching cache state:
        #   service = bstart + hold + post          (chan < 0)
        #   service = mstart + mem_occ + mext       (chan >= 0, where
        #             mstart chains the DRAM channel at bstart + hold)
        # Load-miss events (mshr truthy) additionally reserve an MSHR
        # slot first, at the load's issue time.  Loads record
        # (now, miss-count, sm) in `_d_l_rec`; their completions are the
        # running max of their misses' services.
        self._d_jobs: list = []
        self._d_ev: list = []
        self._d_l_rec: list = []
        # Lines with a deferred (unsettled) sequencer update: an atomic
        # may only resolve inline when none of its lines are pending.
        self._d_seq_pending: set = set()
        # ids of per-warp `outstanding` window lists with a deferred
        # window job pending: an inline window atomic would mutate the
        # list (drops/pops/insort) ahead of the deferred job's settle,
        # so those instructions must defer too.
        self._d_win_ids: set = set()
        # Per-resource counts of unsettled timing events, used by the
        # inline fast paths: an access whose resources are all quiet can
        # run the exact scalar entry point immediately (its bookings
        # land in defer order because nothing earlier is outstanding).
        self._d_pend_bank = [0] * config.l2_banks
        self._d_pend_chan = [0] * config.mem_channels
        self._d_pend_mshr = [0] * config.num_sms
        # Exact lower bound on the completion of the most recent
        # deferred access (valid right after a defer_* call returns
        # None); the engine reads it to size its flush window.
        self._d_lb = 0.0
        # Testing knob: disable every inline fast path so the deferred
        # machinery (event recording, queue scans, flush) is exercised
        # even on uncontended traces.  On graph workloads the fast
        # paths keep the queues permanently quiet, so without this the
        # contended path would be unreachable from tests.
        self._d_force = False

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _l2_service(
        self, sm: int, line: int, now: float, hold: float
    ) -> float:
        """Service an access at the line's home L2 bank.

        Models both latency (NUCA distance, memory fill) and throughput
        (bank occupancy, DRAM channel occupancy).  Returns the time the
        response reaches the requesting core.
        """
        bank = line % self._l2_banks
        banks_free = self._l2_bank_free
        start = banks_free[bank]
        if start < now:
            start = now
        banks_free[bank] = start + hold
        l2_lat = self._l2_lat_min + (bank + sm) % self._l2_span1
        # L2 lookup + VALID install, inlined (this is the hottest call in
        # the simulator).  The epoch checks mirror SetAssocCache.lookup;
        # on a miss the line is known absent (pop above removed any stale
        # entry), and no protocol ever epoch-invalidates the shared L2,
        # so the stale-victim scan is unnecessary.
        l2 = self.l2
        cache_set = l2._sets[line % l2.num_sets]
        entry = cache_set.pop(line, None)
        valid_epoch = l2._valid_epoch
        all_epoch = l2._all_epoch
        if entry is not None:
            epoch = entry >> 2
            if epoch >= all_epoch and (
                entry & 3 != VALID or epoch >= valid_epoch
            ):
                cache_set[line] = entry
                self.stats.l2_hits += 1
                return start + hold + l2_lat
        self.stats.l2_misses += 1
        if len(cache_set) >= l2.assoc:
            if valid_epoch or all_epoch:
                l2.install(line, VALID)
            else:
                del cache_set[next(iter(cache_set))]
                cache_set[line] = VALID
        else:
            epoch = valid_epoch if valid_epoch > all_epoch else all_epoch
            cache_set[line] = (epoch << 2) | VALID
        channels_free = self._mem_channel_free
        channel = line % self._mem_channels
        mem_start = channels_free[channel]
        issue = start + hold
        if mem_start < issue:
            mem_start = issue
        mem_occ = self._mem_occupancy
        channels_free[channel] = mem_start + mem_occ
        return (mem_start + mem_occ
                + self._mem_lat_min + (bank + sm) % self._mem_span1
                + l2_lat)

    def _install_l1(
        self, sm: int, line: int, state: int, now: float = 0.0
    ) -> None:
        evicted = self.l1s[sm].install(line, state)
        if evicted is not None and evicted[1] == OWNED:
            # Writing back an owned line returns registration to the L2:
            # the victim's data and directory update occupy its home bank.
            # This is the churn that makes ownership unprofitable when the
            # working set thrashes the L1 (Section IV-A2's high-volume
            # argument against DeNovo).
            victim = evicted[0]
            self.owner.pop(victim, None)
            bank = victim % self.config.l2_banks
            start = self._l2_bank_free[bank]
            if start < now:
                start = now
            self._l2_bank_free[bank] = start + self.config.l2_bank_occupancy
            self.stats.extra["owned_writebacks"] = (
                self.stats.extra.get("owned_writebacks", 0) + 1
            )

    def _serialize(self, line: int, earliest: float, hold: float) -> float:
        """Queue on the line's atomic sequencer; return operation start."""
        start = self.sequencer.get(line, 0.0)
        if start < earliest:
            start = earliest
        self.sequencer[line] = start + hold
        return start

    # ------------------------------------------------------------------
    # Protocol interface (subclasses implement)
    # ------------------------------------------------------------------
    def load(self, sm: int, lines: tuple, now: float) -> float:
        """Blocking coalesced load; returns data-arrival time."""
        raise NotImplementedError

    def store(self, sm: int, lines: tuple, now: float) -> tuple[float, float]:
        """Non-blocking store; returns (warp-accept time, global-drain time)."""
        raise NotImplementedError

    def atomic(
        self, sm: int, line: int, count: int, now: float,
        issue: float | None = None,
    ) -> float:
        """Atomic RMWs to one line; returns result-return time.

        ``now`` is the earliest the operation may logically execute (the
        consistency model's program-order floor); ``issue`` is when the
        warp issued the instruction.  Shared-resource contention (banks,
        DRAM channels, atomic units) is booked at ``issue`` so that a
        warp ordered far into the future does not reserve hardware ahead
        of requests that arrive earlier in global time.
        """
        raise NotImplementedError

    def acquire(self, sm: int) -> int:
        """Apply acquire-side invalidation; return its pipeline cost."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Batched load/store entry points for the lockstep engine.  The
    # contract: results and side effects must be exactly those of calling
    # the scalar method once per access *in list order* — cache LRU
    # state, ring slots, and bank/channel timelines are order-dependent,
    # so these are sequencing contracts, not just value contracts.
    # Subclasses override with vectorized implementations; these
    # reference loops define the semantics.
    # ------------------------------------------------------------------
    def load_batch(
        self, sms: list, lines_seq: list, nows: list
    ) -> list:
        """Batched :meth:`load`; returns per-access arrival times."""
        load = self.load
        return [load(sms[i], lines_seq[i], nows[i])
                for i in range(len(sms))]

    def store_batch(
        self, sms: list, lines_seq: list, nows: list
    ) -> tuple[list, list]:
        """Batched :meth:`store`; returns (accept times, drain times)."""
        store = self.store
        accepts = []
        drains = []
        for i in range(len(sms)):
            accept, drain = store(sms[i], lines_seq[i], nows[i])
            accepts.append(accept)
            drains.append(drain)
        return accepts, drains

    # ------------------------------------------------------------------
    # Deferred-timing accesses for the batched engine.  `defer_load`,
    # `defer_atomic` and `defer_atomic_window` split an access into its
    # two halves: *presence* (L1/L2 hit-miss, LRU order, installs,
    # victim choice, ownership moves, stat counters — time-independent,
    # resolved immediately in call order) and *timing* (MSHR rings, bank
    # and channel queues, per-line sequencers, atomic units — recorded
    # as an ordered event stream plus per-access job records and settled
    # by `flush_deferred`).  Contract: interleaving any sequence of
    # defer calls with one flush_deferred must produce exactly the
    # results and side effects of the scalar entry points at each defer
    # point, provided no other bank/channel/MSHR/sequencer traffic
    # occurs between the first defer and the flush (the engine flushes
    # before every inline store or fallback atomic for this reason).
    # An access that needs no shared timing resources (L1-hit load,
    # locally-owned DeNovo atomic with no pending sequencer work)
    # completes immediately: the call returns its time(s) instead of
    # None and appends nothing.
    # ------------------------------------------------------------------
    def defer_load(self, sm: int, lines: tuple, now: float) -> float | None:
        """Begin a deferred load; None means 'parked until flush'.

        Base implementation never defers: it runs the scalar load
        inline, which trivially satisfies the contract and keeps any
        third protocol correct (if slower) under the batched engine.
        """
        return self.load(sm, lines, now)

    def defer_atomic(
        self, sm: int, pairs: tuple, floor: float, issue: float
    ) -> tuple[float | None, int, float]:
        """Begin a deferred paired/window-1 atomic instruction.

        Returns ``(done, lanes, lb)``.  A non-None ``done`` means the
        instruction resolved inline (scalar semantics, nothing queued);
        otherwise its completion arrives via `flush_deferred` and ``lb``
        is a sound lower bound on it.  Base implementation always
        resolves inline through :meth:`atomic_round`.
        """
        done, lanes = self.atomic_round(sm, pairs, floor, issue)
        return done, lanes, 0.0

    def defer_atomic_window(
        self, sm: int, pairs: tuple, now: float,
        outstanding: list, window: int,
    ) -> tuple[float | None, float | None, float]:
        """Begin a deferred DRFrlx atomic instruction.

        Returns ``(t, last, lb)`` mirroring :meth:`atomic_window`; a
        None ``last`` means the instruction was deferred (``lb`` bounds
        its completion, and the settle inserts every pair completion
        into ``outstanding``).  Only sound when the caller guarantees no
        pair would block on a full window.  Base implementation always
        resolves inline.
        """
        t, last = self.atomic_window(sm, pairs, now, outstanding, window)
        return t, last, 0.0

    def flush_deferred(self) -> list:
        """Settle deferred accesses; one completion per job, defer order."""
        return []

    def _flush_timing(self) -> tuple[list, list]:
        """Replay the deferred event stream over the shared timelines.

        Returns ``(service, load_res)``: the per-event service times (in
        event order) and the per-load completions (in load-defer order).
        Consumes and resets the event and per-miss/per-load buffers; the
        caller owns the job list.
        """
        ev = self._d_ev
        nev = len(ev)
        l_rec = self._d_l_rec
        self._d_ev = []
        self._d_l_rec = []
        pend_bank = self._d_pend_bank
        pend_chan = self._d_pend_chan
        pend_mshr = self._d_pend_mshr
        for i in range(len(pend_bank)):
            pend_bank[i] = 0
        for i in range(len(pend_chan)):
            pend_chan[i] = 0
        for i in range(len(pend_mshr)):
            pend_mshr[i] = 0
        l1_lat = self.config.l1_hit_latency
        mshr_hold = self._l2_lat_min
        mem_occ = self._mem_occupancy
        if nev < _BATCH_MIN:
            # Tiny flush: literal scalar replay of the recorded stream.
            banks_free = self._l2_bank_free
            channels_free = self._mem_channel_free
            mshrs = self._mshrs
            service = []
            msvc = []
            li = 0
            remaining = 0
            l_now = 0.0
            l_sm = 0
            for bank, s, mshr, hold, chan, post, mext in ev:
                if mshr:
                    # One load's misses are contiguous in the stream.
                    if not remaining:
                        l_now, remaining, l_sm = l_rec[li]
                        li += 1
                    remaining -= 1
                    s = mshrs[l_sm].reserve(l_now, mshr_hold)
                bstart = banks_free[bank]
                if bstart < s:
                    bstart = s
                banks_free[bank] = bstart + hold
                if chan < 0:
                    done = bstart + hold + post
                else:
                    mstart = channels_free[chan]
                    mem_issue = bstart + hold
                    if mstart < mem_issue:
                        mstart = mem_issue
                    channels_free[chan] = mstart + mem_occ
                    done = mstart + mem_occ + mext
                service.append(done)
                if mshr:
                    msvc.append(done)
            load_res = []
            j = 0
            for now, cnt, _sm in l_rec:
                worst = now + l1_lat
                for _ in range(cnt):
                    v = msvc[j]
                    j += 1
                    if v > worst:
                        worst = v
                load_res.append(worst)
            return service, load_res
        arr = np.array(ev, dtype=np.float64)
        mshr_mask = arr[:, 2] != 0.0
        s = arr[:, 1].copy()
        if l_rec:
            rec = np.array(l_rec, dtype=np.float64)
            cnt = rec[:, 1].astype(np.int64)
            m_sm_arr = np.repeat(rec[:, 2].astype(np.int64), cnt)
            m_now_arr = np.repeat(rec[:, 0], cnt)
            mshr_start = np.empty(len(m_sm_arr), dtype=np.float64)
            for sm in np.unique(m_sm_arr).tolist():
                sel = m_sm_arr == sm
                mshr_start[sel] = ring_scan(
                    self._mshrs[sm], m_now_arr[sel], mshr_hold)
            s[mshr_mask] = mshr_start
        holds = arr[:, 3]
        bstart = queue_scan_var(
            arr[:, 0].astype(np.int64), s, holds, self._l2_bank_free)
        svc = bstart + holds + arr[:, 5]
        chan_arr = arr[:, 4].astype(np.int64)
        ci = np.flatnonzero(chan_arr >= 0)
        if ci.size:
            # Channel events carry post == 0, so svc[ci] is the DRAM
            # issue time bstart + hold.
            mstart = queue_scan(chan_arr[ci], svc[ci],
                                self._mem_channel_free, mem_occ)
            svc[ci] = mstart + mem_occ + arr[ci, 6]
        if l_rec:
            seg_starts = np.cumsum(cnt) - cnt
            load_res = np.maximum(
                rec[:, 0] + l1_lat,
                np.maximum.reduceat(svc[mshr_mask], seg_starts)).tolist()
        else:
            load_res = []
        return svc.tolist(), load_res

    # ------------------------------------------------------------------
    # Batched atomic entry points (subclasses override with specialized
    # loops; these reference implementations define the semantics).
    # ------------------------------------------------------------------
    def atomic_round(
        self, sm: int, pairs: tuple, floor: float, issue: float
    ) -> tuple[float, int]:
        """Service one warp atomic instruction's ``(line, count)`` pairs.

        Every pair issues at ``issue`` with program-order floor ``floor``
        (the pairs belong to different lanes, so they are concurrent).
        Returns ``(done, lanes)``: the latest completion (at least
        ``floor``) and the total lane count.
        """
        atomic = self.atomic
        done = floor
        lanes = 0
        for line, count in pairs:
            lanes += count
            completion = atomic(sm, line, count, floor, issue=issue)
            if completion > done:
                done = completion
        return done, lanes

    def atomic_window(
        self, sm: int, pairs: tuple, now: float,
        outstanding: list, window: int,
    ) -> tuple[float, float]:
        """Service pairs through a DRFrlx MLP window.

        ``outstanding`` is the warp's sorted list of in-flight atomic
        completions, mutated in place.  A pair whose window is full
        blocks until the oldest in-flight completion retires.  Returns
        ``(t, last_completion)``: the issue floor after the final pair
        and the latest completion.
        """
        atomic = self.atomic
        t = now
        last = now
        for line, count in pairs:
            while outstanding and outstanding[0] <= t:
                del outstanding[0]
            if len(outstanding) >= window:
                t = outstanding.pop(0)
            completion = atomic(sm, line, count, t, issue=now)
            if completion > last:
                last = completion
            insort(outstanding, completion)
        return t, last
