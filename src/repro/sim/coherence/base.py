"""Memory-system base: shared structure for both coherence protocols.

The memory system owns the per-SM L1s, the shared banked L2, the MSHR and
store-buffer resource models, the per-line atomic sequencers, and the
DeNovo ownership directory.  Protocol subclasses implement the latency
policy for loads, stores, atomics, and acquires.

Resource modeling: MSHRs and store-buffer entries are FIFO-recycled rings
of free-at times — reserving a slot that is still busy pushes the request
out to the slot's free time.  Per-line sequencers serialize atomic
operations to the same address, wherever they execute (L2 bank for GPU
coherence, owning L1 for DeNovo).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from ..cache import OWNED, VALID, SetAssocCache
from ..config import SystemConfig

__all__ = ["MemoryStats", "MemorySystem"]


@dataclass
class MemoryStats:
    """Event counters exposed for tests and analyses."""

    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    stores: int = 0
    atomics: int = 0
    atomics_local: int = 0
    atomics_remote_transfer: int = 0
    ownership_registrations: int = 0
    acquires: int = 0
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-safe mapping of every counter (``extra`` copied)."""
        data = {f.name: getattr(self, f.name) for f in fields(self)
                if f.name != "extra"}
        data["extra"] = dict(self.extra)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "MemoryStats":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown MemoryStats fields: {sorted(unknown)}")
        payload = dict(data)
        payload["extra"] = dict(payload.get("extra", {}))
        return cls(**payload)


class _Ring:
    """FIFO-recycled pool of ``n`` resource slots holding free-at times."""

    __slots__ = ("free_at", "idx", "n")

    def __init__(self, n: int) -> None:
        self.free_at = [0.0] * n
        self.idx = 0
        self.n = n

    def reserve(self, now: float, hold: float) -> float:
        """Claim the next slot; return the (possibly delayed) start time."""
        i = self.idx
        self.idx = (i + 1) % self.n
        start = self.free_at[i]
        if start < now:
            start = now
        self.free_at[i] = start + hold
        return start


class MemorySystem:
    """Shared skeleton of the two coherence protocols."""

    name = "base"

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.stats = MemoryStats()
        self.l1s = [
            SetAssocCache(config.l1_lines, config.l1_assoc)
            for _ in range(config.num_sms)
        ]
        self.l2 = SetAssocCache(config.l2_lines, config.l2_assoc)
        self.owner: dict[int, int] = {}
        self.sequencer: dict[int, float] = {}
        self._mshrs = [_Ring(config.l1_mshrs) for _ in range(config.num_sms)]
        self._store_buffers = [
            _Ring(config.store_buffer_entries) for _ in range(config.num_sms)
        ]
        self._l2_bank_free = [0.0] * config.l2_banks
        self._mem_channel_free = [0.0] * config.mem_channels
        # Per-SM L1 atomic unit (DeNovo executes atomics at the owner L1,
        # which is a throughput-limited resource just like an L2 bank).
        self._l1_atomic_free = [0.0] * config.num_sms

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _l2_service(
        self, sm: int, line: int, now: float, hold: float
    ) -> float:
        """Service an access at the line's home L2 bank.

        Models both latency (NUCA distance, memory fill) and throughput
        (bank occupancy, DRAM channel occupancy).  Returns the time the
        response reaches the requesting core.
        """
        cfg = self.config
        bank = line % cfg.l2_banks
        start = self._l2_bank_free[bank]
        if start < now:
            start = now
        self._l2_bank_free[bank] = start + hold
        if self.l2.lookup(line) is not None:
            self.stats.l2_hits += 1
            return start + hold + cfg.l2_latency(sm, line)
        self.stats.l2_misses += 1
        self.l2.install(line, VALID)
        channel = line % cfg.mem_channels
        mem_start = self._mem_channel_free[channel]
        issue = start + hold
        if mem_start < issue:
            mem_start = issue
        self._mem_channel_free[channel] = mem_start + cfg.mem_occupancy
        return (mem_start + cfg.mem_occupancy
                + cfg.mem_latency(sm, line) + cfg.l2_latency(sm, line))

    def _install_l1(
        self, sm: int, line: int, state: int, now: float = 0.0
    ) -> None:
        evicted = self.l1s[sm].install(line, state)
        if evicted is not None and evicted[1] == OWNED:
            # Writing back an owned line returns registration to the L2:
            # the victim's data and directory update occupy its home bank.
            # This is the churn that makes ownership unprofitable when the
            # working set thrashes the L1 (Section IV-A2's high-volume
            # argument against DeNovo).
            victim = evicted[0]
            self.owner.pop(victim, None)
            bank = victim % self.config.l2_banks
            start = self._l2_bank_free[bank]
            if start < now:
                start = now
            self._l2_bank_free[bank] = start + self.config.l2_bank_occupancy
            self.stats.extra["owned_writebacks"] = (
                self.stats.extra.get("owned_writebacks", 0) + 1
            )

    def _serialize(self, line: int, earliest: float, hold: float) -> float:
        """Queue on the line's atomic sequencer; return operation start."""
        start = self.sequencer.get(line, 0.0)
        if start < earliest:
            start = earliest
        self.sequencer[line] = start + hold
        return start

    # ------------------------------------------------------------------
    # Protocol interface (subclasses implement)
    # ------------------------------------------------------------------
    def load(self, sm: int, lines: tuple, now: float) -> float:
        """Blocking coalesced load; returns data-arrival time."""
        raise NotImplementedError

    def store(self, sm: int, lines: tuple, now: float) -> tuple[float, float]:
        """Non-blocking store; returns (warp-accept time, global-drain time)."""
        raise NotImplementedError

    def atomic(
        self, sm: int, line: int, count: int, now: float,
        issue: float | None = None,
    ) -> float:
        """Atomic RMWs to one line; returns result-return time.

        ``now`` is the earliest the operation may logically execute (the
        consistency model's program-order floor); ``issue`` is when the
        warp issued the instruction.  Shared-resource contention (banks,
        DRAM channels, atomic units) is booked at ``issue`` so that a
        warp ordered far into the future does not reserve hardware ahead
        of requests that arrive earlier in global time.
        """
        raise NotImplementedError

    def acquire(self, sm: int) -> int:
        """Apply acquire-side invalidation; return its pipeline cost."""
        raise NotImplementedError
