"""DeNovo coherence (Section II-B).

* Written data and atomics obtain **ownership** (registration) at the L1.
  Owned lines survive acquires and are never flushed at releases.
* Atomics to locally-owned lines execute at the L1 with no L2 traffic at
  all — synchronization locality turns pushed updates into core-local
  work.  Non-owned atomics pay an ownership transfer: from the current
  owner's remote L1 (ping-pong) or from the L2 directory.
* Loads of remotely-owned lines are serviced by the owner's L1.
* Acquires self-invalidate only the VALID (non-owned) lines.
"""

from __future__ import annotations

from bisect import insort

from ..cache import OWNED, VALID
from .base import MemorySystem

__all__ = ["DeNovoCoherence"]


class DeNovoCoherence(MemorySystem):
    """Ownership-based coherence with L1-side atomics."""

    name = "denovo"

    def __init__(self, config) -> None:
        super().__init__(config)
        # Migratory detection: a second consecutive atomic request from
        # the same remote core migrates the line's registration to it.
        self._last_atomic_sm: dict[int, int] = {}

    def _forward_delay(self, line: int, now: float) -> float:
        """Directory forwarding: a tag lookup at the home bank."""
        cfg = self.config
        bank = line % cfg.l2_banks
        start = self._l2_bank_free[bank]
        if start < now:
            start = now
        self._l2_bank_free[bank] = start + cfg.l2_bank_occupancy
        return start + cfg.l2_bank_occupancy

    def _acquire_ownership(self, sm: int, line: int, now: float) -> float:
        """Register ownership at ``sm``; return registration-complete time."""
        cfg = self.config
        holder = self.owner.get(line)
        if holder is not None and holder != sm:
            self.stats.atomics_remote_transfer += 1
            self.l1s[holder].invalidate(line)
            ready = (self._forward_delay(line, now)
                     + self._rl1_min + abs(sm - holder) % self._rl1_span1)
        else:
            ready = self._l2_service(sm, line, now, cfg.l2_bank_occupancy)
        self.stats.ownership_registrations += 1
        self.owner[line] = sm
        self._install_l1(sm, line, OWNED, now)
        return ready

    def load(self, sm: int, lines: tuple, now: float) -> float:
        # Hit path inlined against the packed cache entries exactly as in
        # GPUCoherence.load, and the miss path inlines the L2 service,
        # directory forwarding, and the L1 refill (`_install_l1`).  A
        # DeNovo L1 can hold OWNED lines, so an evicted live OWNED victim
        # books its ownership writeback exactly as `_install_l1` does.
        # Epochs are loop invariants: nothing below invalidates this L1
        # or the shared L2.
        l1 = self.l1s[sm]
        l1_sets = l1._sets
        l1_nsets = l1.num_sets
        l1_assoc = l1.assoc
        # ``invalidate_valid``/``invalidate_all`` keep valid_epoch >=
        # all_epoch, so a packed entry is live iff it survives the VALID
        # epoch (any state), or it is OWNED (bit 2) and survives the ALL
        # epoch — two integer compares on the packed value.
        ve4 = l1._valid_epoch << 2
        ae4 = l1._all_epoch << 2
        packed_valid = ve4 | VALID
        cfg = self.config
        l1_lat = cfg.l1_hit_latency
        l2_lat_min = cfg.l2_latency_min
        bank_occ = cfg.l2_bank_occupancy
        rl1_min = self._rl1_min
        rl1_span1 = self._rl1_span1
        l2 = self.l2
        l2_sets = l2._sets
        l2_nsets = l2.num_sets
        l2_assoc = l2.assoc
        l2_live_min = l2._valid_epoch << 2
        l2_packed_valid = l2_live_min | VALID
        l2_install = l2.install
        l2_banks = self._l2_banks
        l2_span1 = self._l2_span1
        banks_free = self._l2_bank_free
        mem_channels = self._mem_channels
        mem_lat_min = self._mem_lat_min
        mem_span1 = self._mem_span1
        mem_occ = self._mem_occupancy
        channels_free = self._mem_channel_free
        owner = self.owner
        owner_get = owner.get
        owner_pop = owner.pop
        mshrs = self._mshrs[sm]
        mshr_free = mshrs.free_at
        mshr_n = mshrs.n
        worst = now + l1_lat
        hits = 0
        misses = 0
        l2_hits = 0
        l2_misses = 0
        owned_wb = 0
        for line in lines:
            cache_set = l1_sets[line % l1_nsets]
            # -1 sentinel: -1 >= ve4 is false (ve4 >= 0), and though
            # -1 & 2 is truthy, -1 >= ae4 is false too — a missing line
            # always falls through without an explicit None check.
            entry = cache_set.pop(line, -1)
            if entry >= ve4 or (entry & 2 and entry >= ae4):
                cache_set[line] = entry
                hits += 1
                continue
            misses += 1
            i = mshrs.idx
            mshrs.idx = (i + 1) % mshr_n
            start = mshr_free[i]
            if start < now:
                start = now
            mshr_free[i] = start + l2_lat_min
            holder = owner_get(line)
            if holder is not None and holder != sm:
                # Data is forwarded from the owning L1; ownership stays.
                # (inlined _forward_delay: directory tag lookup at home)
                bank = line % l2_banks
                bstart = banks_free[bank]
                if bstart < start:
                    bstart = start
                banks_free[bank] = bstart + bank_occ
                done = (bstart + bank_occ
                        + rl1_min + abs(sm - holder) % rl1_span1 + l1_lat)
            else:
                # --- L2 service (inlined _l2_service) ---
                bank = line % l2_banks
                bstart = banks_free[bank]
                if bstart < start:
                    bstart = start
                banks_free[bank] = bstart + bank_occ
                l2_lat = l2_lat_min + (bank + sm) % l2_span1
                l2_set = l2_sets[line % l2_nsets]
                l2_entry = l2_set.pop(line, -1)
                if l2_entry >= l2_live_min:
                    l2_set[line] = l2_entry
                    l2_hits += 1
                    done = bstart + bank_occ + l2_lat + l1_lat
                else:
                    l2_misses += 1
                    if len(l2_set) >= l2_assoc:
                        if l2_live_min:
                            l2_install(line, VALID)
                        else:
                            del l2_set[next(iter(l2_set))]
                            l2_set[line] = l2_packed_valid
                    else:
                        l2_set[line] = l2_packed_valid
                    channel = line % mem_channels
                    mstart = channels_free[channel]
                    issue = bstart + bank_occ
                    if mstart < issue:
                        mstart = issue
                    channels_free[channel] = mstart + mem_occ
                    done = (mstart + mem_occ
                            + mem_lat_min + (bank + sm) % mem_span1
                            + l2_lat + l1_lat)
            # --- L1 refill (inlined _install_l1 with state=VALID) ---
            if len(cache_set) >= l1_assoc:
                victim = None
                if ve4:
                    for cand, cand_entry in cache_set.items():
                        if cand_entry < ve4 and (
                            not cand_entry & 2 or cand_entry < ae4
                        ):
                            victim = cand
                            break
                if victim is None:
                    victim = next(iter(cache_set))
                    v_entry = cache_set[victim]
                    del cache_set[victim]
                    if v_entry & 3 == OWNED:
                        # Ownership writeback: registration returns to
                        # the L2 and occupies the victim's home bank.
                        owner_pop(victim, None)
                        vbank = victim % l2_banks
                        vstart = banks_free[vbank]
                        if vstart < now:
                            vstart = now
                        banks_free[vbank] = vstart + bank_occ
                        owned_wb += 1
                else:
                    del cache_set[victim]
            cache_set[line] = packed_valid
            if done > worst:
                worst = done
        stats = self.stats
        stats.l1_hits += hits
        stats.l1_misses += misses
        stats.l2_hits += l2_hits
        stats.l2_misses += l2_misses
        if owned_wb:
            extra = stats.extra
            extra["owned_writebacks"] = (
                extra.get("owned_writebacks", 0) + owned_wb
            )
        return worst

    def store(self, sm: int, lines: tuple, now: float) -> tuple[float, float]:
        cfg = self.config
        l1 = self.l1s[sm]
        l1_sets = l1._sets
        l1_nsets = l1.num_sets
        ae4 = l1._all_epoch << 2
        l1_lat = cfg.l1_hit_latency
        buf_hold = cfg.l2_latency_min + cfg.l2_bank_occupancy
        buffers = self._store_buffers[sm]
        buf_free = buffers.free_at
        buf_n = buffers.n
        acquire_ownership = self._acquire_ownership
        accept = now
        drain = now
        for line in lines:
            # Inlined peek + LRU-touch: a live OWNED packed entry has
            # bit 2 set and survives the ALL epoch (see `atomic`).
            l1_set = l1_sets[line % l1_nsets]
            entry = l1_set.get(line, -1)
            if entry & 2 and entry >= ae4:
                # Registered writes complete locally and need no flush.
                del l1_set[line]
                l1_set[line] = entry  # touch LRU
                done = now + l1_lat
            else:
                i = buffers.idx
                buffers.idx = (i + 1) % buf_n
                start = buf_free[i]
                if start < now:
                    start = now
                buf_free[i] = start + buf_hold
                if start > accept:
                    accept = start
                done = acquire_ownership(sm, line, start)
            if done > drain:
                drain = done
        self.stats.stores += len(lines)
        return accept, drain

    def atomic(
        self, sm: int, line: int, count: int, now: float,
        issue: float | None = None,
    ) -> float:
        cfg = self.config
        if issue is None:
            issue = now
        stats = self.stats
        stats.atomics += count
        holder = self.owner.get(line)
        if holder == sm:
            # Synchronization locality: the atomic never leaves the core.
            # Locally-owned atomics flow through the L1's write pipeline
            # (serialized only per line), which is the whole point of
            # registration — they are nearly as cheap as L1 stores.
            # The peek + LRU-touch pair is inlined into one dict probe;
            # a live OWNED packed entry has bit 2 set and survives the
            # ALL epoch.
            l1 = self.l1s[sm]
            l1_set = l1._sets[line % l1.num_sets]
            entry = l1_set.get(line)
            if entry is not None and entry & 2 and entry >= (
                l1._all_epoch << 2
            ):
                del l1_set[line]
                l1_set[line] = entry  # touch LRU
                stats.atomics_local += count
                self._last_atomic_sm[line] = sm
                l1_lat = cfg.l1_hit_latency
                start = self.sequencer.get(line, 0.0)
                arrival = now + l1_lat
                if start < arrival:
                    start = arrival
                self.sequencer[line] = start + count
                return start + count + l1_lat
        if holder is None:
            # Unowned: register ownership at the requester via the L2
            # directory, then execute locally.
            self._last_atomic_sm[line] = sm
            arrival = self._acquire_ownership(sm, line, issue)
            if arrival < now:
                arrival = now
            start = self.sequencer.get(line, 0.0)
            if start < arrival:
                start = arrival
            self.sequencer[line] = start + count
            return start + count + cfg.l1_hit_latency
        # Owned elsewhere.  Migratory detection: if this core also issued
        # the line's previous atomic, the sharing is migratory (e.g. a
        # thread block hammering its own window from a new SM after
        # rescheduling) and ownership transfers; otherwise the atomic is
        # forwarded and executes at the owner's L1 (contended lines stay
        # put instead of ping-ponging).
        if self._last_atomic_sm.get(line) == sm:
            self._last_atomic_sm[line] = sm
            # The transfer's directory/bank work is booked at issue time;
            # the RMW waits for the line's prior operations.
            arrival = self._acquire_ownership(sm, line, issue)
            if arrival < now:
                arrival = now
            start = self.sequencer.get(line, 0.0)
            if start < arrival:
                start = arrival
            self.sequencer[line] = start + count
            return start + count + cfg.l1_hit_latency
        self._last_atomic_sm[line] = sm
        # Forwarded execution: the RMWs serialize on the line at the same
        # rate as an L2 atomic unit would, and the *message* occupies the
        # owner core's single network ingress/atomic unit — which is what
        # makes scattered single-lane updates (low-reuse workloads) prefer
        # GPU coherence's 16 banked L2 units, while batched updates to hot
        # lines amortize the ingress cost.
        self.stats.atomics_remote_transfer += count
        # The owner's L1 keeps the line hot: forwarded atomics refresh it.
        self.l1s[holder].lookup(line)
        rmw_hold = count * cfg.atomic_occupancy
        ingress_hold = cfg.l1_atomic_occupancy + count
        # Forwarding and the owner-unit occupancy are booked at issue
        # time (the message travels immediately); the RMW additionally
        # waits for the program-order floor and prior same-line work.
        forwarded = self._forward_delay(line, issue)
        unit = self._l1_atomic_free[holder]
        unit_start = unit if unit > forwarded else forwarded
        self._l1_atomic_free[holder] = unit_start + ingress_hold
        start = self.sequencer.get(line, 0.0)
        if unit_start > start:
            start = unit_start
        if now > start:
            start = now
        self.sequencer[line] = start + rmw_hold
        return (start + rmw_hold
                + self._rl1_min + abs(sm - holder) % self._rl1_span1)

    def acquire(self, sm: int) -> int:
        self.stats.acquires += 1
        self.l1s[sm].invalidate_valid()
        return self.config.l1_hit_latency

    # ------------------------------------------------------------------
    # Batched atomics: one call per warp atomic instruction with the
    # per-pair body of `atomic` inlined (see GPUCoherence for the same
    # structure).  The ownership-transfer branches stay method calls —
    # they are rare next to the local/forwarded fast paths.  Epochs and
    # the set dicts are loop invariants: `_acquire_ownership` only ever
    # single-line-invalidates *other* L1s.
    # ------------------------------------------------------------------
    def atomic_round(
        self, sm: int, pairs: tuple, floor: float, issue: float
    ) -> tuple[float, int]:
        cfg = self.config
        l1 = self.l1s[sm]
        l1_sets = l1._sets
        l1_nsets = l1.num_sets
        ae4 = l1._all_epoch << 2
        l1_lat = cfg.l1_hit_latency
        atomic_occ = cfg.atomic_occupancy
        l1_atomic_occ = cfg.l1_atomic_occupancy
        bank_occ = cfg.l2_bank_occupancy
        l2_banks = self._l2_banks
        banks_free = self._l2_bank_free
        l1_atomic_free = self._l1_atomic_free
        rl1_min = self._rl1_min
        rl1_span1 = self._rl1_span1
        l1s = self.l1s
        owner_get = self.owner.get
        last_sm = self._last_atomic_sm
        last_get = last_sm.get
        acquire_ownership = self._acquire_ownership
        sequencer = self.sequencer
        seq_get = sequencer.get
        done = floor
        lanes = 0
        local = 0
        remote = 0
        for line, count in pairs:
            lanes += count
            holder = owner_get(line)
            if holder == sm:
                l1_set = l1_sets[line % l1_nsets]
                entry = l1_set.get(line, -1)
                if entry & 2 and entry >= ae4:
                    del l1_set[line]
                    l1_set[line] = entry  # touch LRU
                    local += count
                    last_sm[line] = sm
                    start = seq_get(line, 0.0)
                    arrival = floor + l1_lat
                    if start < arrival:
                        start = arrival
                    sequencer[line] = start + count
                    completion = start + count + l1_lat
                    if completion > done:
                        done = completion
                    continue
            if holder is None or last_get(line) == sm:
                last_sm[line] = sm
                arrival = acquire_ownership(sm, line, issue)
                if arrival < floor:
                    arrival = floor
                start = seq_get(line, 0.0)
                if start < arrival:
                    start = arrival
                sequencer[line] = start + count
                completion = start + count + l1_lat
                if completion > done:
                    done = completion
                continue
            last_sm[line] = sm
            remote += count
            l1s[holder].lookup(line)
            rmw_hold = count * atomic_occ
            ingress_hold = l1_atomic_occ + count
            # (inlined _forward_delay at issue time)
            bank = line % l2_banks
            fstart = banks_free[bank]
            if fstart < issue:
                fstart = issue
            banks_free[bank] = fstart + bank_occ
            forwarded = fstart + bank_occ
            unit = l1_atomic_free[holder]
            unit_start = unit if unit > forwarded else forwarded
            l1_atomic_free[holder] = unit_start + ingress_hold
            start = seq_get(line, 0.0)
            if unit_start > start:
                start = unit_start
            if floor > start:
                start = floor
            sequencer[line] = start + rmw_hold
            completion = (start + rmw_hold
                          + rl1_min + abs(sm - holder) % rl1_span1)
            if completion > done:
                done = completion
        stats = self.stats
        stats.atomics += lanes
        if local:
            stats.atomics_local += local
        if remote:
            stats.atomics_remote_transfer += remote
        return done, lanes

    def atomic_window(
        self, sm: int, pairs: tuple, now: float,
        outstanding: list, window: int,
    ) -> tuple[float, float]:
        cfg = self.config
        l1 = self.l1s[sm]
        l1_sets = l1._sets
        l1_nsets = l1.num_sets
        ae4 = l1._all_epoch << 2
        l1_lat = cfg.l1_hit_latency
        atomic_occ = cfg.atomic_occupancy
        l1_atomic_occ = cfg.l1_atomic_occupancy
        bank_occ = cfg.l2_bank_occupancy
        l2_banks = self._l2_banks
        banks_free = self._l2_bank_free
        l1_atomic_free = self._l1_atomic_free
        rl1_min = self._rl1_min
        rl1_span1 = self._rl1_span1
        l1s = self.l1s
        owner_get = self.owner.get
        last_sm = self._last_atomic_sm
        last_get = last_sm.get
        acquire_ownership = self._acquire_ownership
        sequencer = self.sequencer
        seq_get = sequencer.get
        t = now
        last = now
        lanes = 0
        local = 0
        remote = 0
        for line, count in pairs:
            while outstanding and outstanding[0] <= t:
                del outstanding[0]
            if len(outstanding) >= window:
                t = outstanding.pop(0)
            lanes += count
            holder = owner_get(line)
            if holder == sm:
                l1_set = l1_sets[line % l1_nsets]
                entry = l1_set.get(line, -1)
                if entry & 2 and entry >= ae4:
                    del l1_set[line]
                    l1_set[line] = entry  # touch LRU
                    local += count
                    last_sm[line] = sm
                    start = seq_get(line, 0.0)
                    arrival = t + l1_lat
                    if start < arrival:
                        start = arrival
                    sequencer[line] = start + count
                    completion = start + count + l1_lat
                    if completion > last:
                        last = completion
                    insort(outstanding, completion)
                    continue
            if holder is None or last_get(line) == sm:
                last_sm[line] = sm
                arrival = acquire_ownership(sm, line, now)
                if arrival < t:
                    arrival = t
                start = seq_get(line, 0.0)
                if start < arrival:
                    start = arrival
                sequencer[line] = start + count
                completion = start + count + l1_lat
                if completion > last:
                    last = completion
                insort(outstanding, completion)
                continue
            last_sm[line] = sm
            remote += count
            l1s[holder].lookup(line)
            rmw_hold = count * atomic_occ
            ingress_hold = l1_atomic_occ + count
            # (inlined _forward_delay at issue time)
            bank = line % l2_banks
            fstart = banks_free[bank]
            if fstart < now:
                fstart = now
            banks_free[bank] = fstart + bank_occ
            forwarded = fstart + bank_occ
            unit = l1_atomic_free[holder]
            unit_start = unit if unit > forwarded else forwarded
            l1_atomic_free[holder] = unit_start + ingress_hold
            start = seq_get(line, 0.0)
            if unit_start > start:
                start = unit_start
            if t > start:
                start = t
            sequencer[line] = start + rmw_hold
            completion = (start + rmw_hold
                          + rl1_min + abs(sm - holder) % rl1_span1)
            if completion > last:
                last = completion
            insort(outstanding, completion)
        stats = self.stats
        stats.atomics += lanes
        if local:
            stats.atomics_local += local
        if remote:
            stats.atomics_remote_transfer += remote
        return t, last
