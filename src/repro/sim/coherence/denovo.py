"""DeNovo coherence (Section II-B).

* Written data and atomics obtain **ownership** (registration) at the L1.
  Owned lines survive acquires and are never flushed at releases.
* Atomics to locally-owned lines execute at the L1 with no L2 traffic at
  all — synchronization locality turns pushed updates into core-local
  work.  Non-owned atomics pay an ownership transfer: from the current
  owner's remote L1 (ping-pong) or from the L2 directory.
* Loads of remotely-owned lines are serviced by the owner's L1.
* Acquires self-invalidate only the VALID (non-owned) lines.
"""

from __future__ import annotations

from ..cache import OWNED, VALID
from .base import MemorySystem

__all__ = ["DeNovoCoherence"]


class DeNovoCoherence(MemorySystem):
    """Ownership-based coherence with L1-side atomics."""

    name = "denovo"

    def __init__(self, config) -> None:
        super().__init__(config)
        # Migratory detection: a second consecutive atomic request from
        # the same remote core migrates the line's registration to it.
        self._last_atomic_sm: dict[int, int] = {}

    def _forward_delay(self, line: int, now: float) -> float:
        """Directory forwarding: a tag lookup at the home bank."""
        cfg = self.config
        bank = line % cfg.l2_banks
        start = self._l2_bank_free[bank]
        if start < now:
            start = now
        self._l2_bank_free[bank] = start + cfg.l2_bank_occupancy
        return start + cfg.l2_bank_occupancy

    def _acquire_ownership(self, sm: int, line: int, now: float) -> float:
        """Register ownership at ``sm``; return registration-complete time."""
        cfg = self.config
        holder = self.owner.get(line)
        if holder is not None and holder != sm:
            self.stats.atomics_remote_transfer += 1
            self.l1s[holder].invalidate(line)
            ready = (self._forward_delay(line, now)
                     + cfg.remote_l1_latency(sm, holder))
        else:
            ready = self._l2_service(sm, line, now, cfg.l2_bank_occupancy)
        self.stats.ownership_registrations += 1
        self.owner[line] = sm
        self._install_l1(sm, line, OWNED, now)
        return ready

    def load(self, sm: int, lines: tuple, now: float) -> float:
        l1 = self.l1s[sm]
        cfg = self.config
        stats = self.stats
        mshrs = self._mshrs[sm]
        worst = now + cfg.l1_hit_latency
        for line in lines:
            if l1.lookup(line) is not None:
                stats.l1_hits += 1
                continue
            stats.l1_misses += 1
            start = mshrs.reserve(now, cfg.l2_latency_min)
            holder = self.owner.get(line)
            if holder is not None and holder != sm:
                # Data is forwarded from the owning L1; ownership stays.
                done = (self._forward_delay(line, start)
                        + cfg.remote_l1_latency(sm, holder))
            else:
                done = self._l2_service(sm, line, start, cfg.l2_bank_occupancy)
            done += cfg.l1_hit_latency
            self._install_l1(sm, line, VALID, now)
            if done > worst:
                worst = done
        return worst

    def store(self, sm: int, lines: tuple, now: float) -> tuple[float, float]:
        cfg = self.config
        l1 = self.l1s[sm]
        buffers = self._store_buffers[sm]
        accept = now
        drain = now
        for line in lines:
            self.stats.stores += 1
            if l1.peek(line) == OWNED:
                # Registered writes complete locally and need no flush.
                done = now + cfg.l1_hit_latency
                l1.lookup(line)  # touch LRU
            else:
                start = buffers.reserve(
                    now, cfg.l2_latency_min + cfg.l2_bank_occupancy
                )
                if start > accept:
                    accept = start
                done = self._acquire_ownership(sm, line, start)
            if done > drain:
                drain = done
        return accept, drain

    def atomic(
        self, sm: int, line: int, count: int, now: float,
        issue: float | None = None,
    ) -> float:
        cfg = self.config
        if issue is None:
            issue = now
        self.stats.atomics += count
        holder = self.owner.get(line)
        if holder == sm and self.l1s[sm].peek(line) == OWNED:
            # Synchronization locality: the atomic never leaves the core.
            # Locally-owned atomics flow through the L1's write pipeline
            # (serialized only per line), which is the whole point of
            # registration — they are nearly as cheap as L1 stores.
            self.stats.atomics_local += count
            self._last_atomic_sm[line] = sm
            self.l1s[sm].lookup(line)  # touch LRU
            start = self.sequencer.get(line, 0.0)
            arrival = now + cfg.l1_hit_latency
            if start < arrival:
                start = arrival
            self.sequencer[line] = start + count
            return start + count + cfg.l1_hit_latency
        if holder is None:
            # Unowned: register ownership at the requester via the L2
            # directory, then execute locally.
            self._last_atomic_sm[line] = sm
            arrival = self._acquire_ownership(sm, line, issue)
            if arrival < now:
                arrival = now
            start = self.sequencer.get(line, 0.0)
            if start < arrival:
                start = arrival
            self.sequencer[line] = start + count
            return start + count + cfg.l1_hit_latency
        # Owned elsewhere.  Migratory detection: if this core also issued
        # the line's previous atomic, the sharing is migratory (e.g. a
        # thread block hammering its own window from a new SM after
        # rescheduling) and ownership transfers; otherwise the atomic is
        # forwarded and executes at the owner's L1 (contended lines stay
        # put instead of ping-ponging).
        if self._last_atomic_sm.get(line) == sm:
            self._last_atomic_sm[line] = sm
            # The transfer's directory/bank work is booked at issue time;
            # the RMW waits for the line's prior operations.
            arrival = self._acquire_ownership(sm, line, issue)
            if arrival < now:
                arrival = now
            start = self.sequencer.get(line, 0.0)
            if start < arrival:
                start = arrival
            self.sequencer[line] = start + count
            return start + count + cfg.l1_hit_latency
        self._last_atomic_sm[line] = sm
        # Forwarded execution: the RMWs serialize on the line at the same
        # rate as an L2 atomic unit would, and the *message* occupies the
        # owner core's single network ingress/atomic unit — which is what
        # makes scattered single-lane updates (low-reuse workloads) prefer
        # GPU coherence's 16 banked L2 units, while batched updates to hot
        # lines amortize the ingress cost.
        self.stats.atomics_remote_transfer += count
        # The owner's L1 keeps the line hot: forwarded atomics refresh it.
        self.l1s[holder].lookup(line)
        rmw_hold = count * cfg.atomic_occupancy
        ingress_hold = cfg.l1_atomic_occupancy + count
        # Forwarding and the owner-unit occupancy are booked at issue
        # time (the message travels immediately); the RMW additionally
        # waits for the program-order floor and prior same-line work.
        forwarded = self._forward_delay(line, issue)
        unit = self._l1_atomic_free[holder]
        unit_start = unit if unit > forwarded else forwarded
        self._l1_atomic_free[holder] = unit_start + ingress_hold
        start = self.sequencer.get(line, 0.0)
        if unit_start > start:
            start = unit_start
        if now > start:
            start = now
        self.sequencer[line] = start + rmw_hold
        return start + rmw_hold + cfg.remote_l1_latency(sm, holder)

    def acquire(self, sm: int) -> int:
        self.stats.acquires += 1
        self.l1s[sm].invalidate_valid()
        return self.config.l1_hit_latency
