"""DeNovo coherence (Section II-B).

* Written data and atomics obtain **ownership** (registration) at the L1.
  Owned lines survive acquires and are never flushed at releases.
* Atomics to locally-owned lines execute at the L1 with no L2 traffic at
  all — synchronization locality turns pushed updates into core-local
  work.  Non-owned atomics pay an ownership transfer: from the current
  owner's remote L1 (ping-pong) or from the L2 directory.
* Loads of remotely-owned lines are serviced by the owner's L1.
* Acquires self-invalidate only the VALID (non-owned) lines.
"""

from __future__ import annotations

from bisect import insort

import numpy as np

from ..cache import OWNED, VALID
from .base import MemorySystem, queue_scan, ring_scan

__all__ = ["DeNovoCoherence"]

_BATCH_MIN = 8


class DeNovoCoherence(MemorySystem):
    """Ownership-based coherence with L1-side atomics."""

    name = "denovo"

    def __init__(self, config) -> None:
        super().__init__(config)
        # Migratory detection: a second consecutive atomic request from
        # the same remote core migrates the line's registration to it.
        self._last_atomic_sm: dict[int, int] = {}

    def _forward_delay(self, line: int, now: float) -> float:
        """Directory forwarding: a tag lookup at the home bank."""
        cfg = self.config
        bank = line % cfg.l2_banks
        start = self._l2_bank_free[bank]
        if start < now:
            start = now
        self._l2_bank_free[bank] = start + cfg.l2_bank_occupancy
        return start + cfg.l2_bank_occupancy

    def _acquire_ownership(self, sm: int, line: int, now: float) -> float:
        """Register ownership at ``sm``; return registration-complete time.

        The directory-forward, L2-service and L1-install helpers are
        inlined: this runs once per ownership registration and is the
        hottest call in the DeNovo atomic paths.  The shared L2 is
        never epoch-invalidated, so its liveness check collapses to a
        single packed-entry compare (as in ``load``).
        """
        stats = self.stats
        banks_free = self._l2_bank_free
        bank_occ = self.config.l2_bank_occupancy
        bank = line % self._l2_banks
        owner = self.owner
        holder = owner.get(line)
        if holder is not None and holder != sm:
            stats.atomics_remote_transfer += 1
            self.l1s[holder].invalidate(line)
            # (inlined _forward_delay: directory tag lookup at home)
            start = banks_free[bank]
            if start < now:
                start = now
            banks_free[bank] = start + bank_occ
            ready = (start + bank_occ
                     + self._rl1_min + abs(sm - holder) % self._rl1_span1)
        else:
            # (inlined _l2_service with hold = bank occupancy)
            bstart = banks_free[bank]
            if bstart < now:
                bstart = now
            banks_free[bank] = bstart + bank_occ
            l2 = self.l2
            l2_lat = self._l2_lat_min + (bank + sm) % self._l2_span1
            l2_set = l2._sets[line % l2.num_sets]
            l2_live_min = l2._valid_epoch << 2
            l2_entry = l2_set.pop(line, -1)
            if l2_entry >= l2_live_min:
                l2_set[line] = l2_entry
                stats.l2_hits += 1
                ready = bstart + bank_occ + l2_lat
            else:
                stats.l2_misses += 1
                if len(l2_set) >= l2.assoc:
                    if l2_live_min:
                        l2.install(line, VALID)
                    else:
                        del l2_set[next(iter(l2_set))]
                        l2_set[line] = l2_live_min | VALID
                else:
                    l2_set[line] = l2_live_min | VALID
                channels_free = self._mem_channel_free
                channel = line % self._mem_channels
                mem_start = channels_free[channel]
                issue = bstart + bank_occ
                if mem_start < issue:
                    mem_start = issue
                mem_occ = self._mem_occupancy
                channels_free[channel] = mem_start + mem_occ
                ready = (mem_start + mem_occ
                         + self._mem_lat_min + (bank + sm) % self._mem_span1
                         + l2_lat)
        stats.ownership_registrations += 1
        owner[line] = sm
        # (inlined _install_l1 / SetAssocCache.install, state = OWNED)
        l1 = self.l1s[sm]
        cache_set = l1._sets[line % l1.num_sets]
        ve = l1._valid_epoch
        ae = l1._all_epoch
        packed = ((ve if ve > ae else ae) << 2) | OWNED
        if line in cache_set:
            del cache_set[line]
        elif len(cache_set) >= l1.assoc:
            victim = None
            if ve or ae:
                ve4 = ve << 2
                ae4 = ae << 2
                for cand, entry in cache_set.items():
                    if entry < ae4 or (entry & 3 == VALID
                                       and entry < ve4):
                        victim = cand
                        break
            if victim is None:
                victim = next(iter(cache_set))
                v_entry = cache_set[victim]
                del cache_set[victim]
                if v_entry & 3 == OWNED:
                    # Owned-victim writeback returns registration to
                    # the L2: data + directory update at its home bank.
                    owner.pop(victim, None)
                    vbank = victim % self._l2_banks
                    vstart = banks_free[vbank]
                    if vstart < now:
                        vstart = now
                    banks_free[vbank] = vstart + bank_occ
                    stats.extra["owned_writebacks"] = (
                        stats.extra.get("owned_writebacks", 0) + 1)
            else:
                del cache_set[victim]
        cache_set[line] = packed
        return ready

    def load(self, sm: int, lines: tuple, now: float) -> float:
        # Hit path inlined against the packed cache entries exactly as in
        # GPUCoherence.load, and the miss path inlines the L2 service,
        # directory forwarding, and the L1 refill (`_install_l1`).  A
        # DeNovo L1 can hold OWNED lines, so an evicted live OWNED victim
        # books its ownership writeback exactly as `_install_l1` does.
        # Epochs are loop invariants: nothing below invalidates this L1
        # or the shared L2.
        l1 = self.l1s[sm]
        l1_sets = l1._sets
        l1_nsets = l1.num_sets
        l1_assoc = l1.assoc
        # ``invalidate_valid``/``invalidate_all`` keep valid_epoch >=
        # all_epoch, so a packed entry is live iff it survives the VALID
        # epoch (any state), or it is OWNED (bit 2) and survives the ALL
        # epoch — two integer compares on the packed value.
        ve4 = l1._valid_epoch << 2
        ae4 = l1._all_epoch << 2
        packed_valid = ve4 | VALID
        cfg = self.config
        l1_lat = cfg.l1_hit_latency
        l2_lat_min = cfg.l2_latency_min
        bank_occ = cfg.l2_bank_occupancy
        rl1_min = self._rl1_min
        rl1_span1 = self._rl1_span1
        l2 = self.l2
        l2_sets = l2._sets
        l2_nsets = l2.num_sets
        l2_assoc = l2.assoc
        l2_live_min = l2._valid_epoch << 2
        l2_packed_valid = l2_live_min | VALID
        l2_install = l2.install
        l2_banks = self._l2_banks
        l2_span1 = self._l2_span1
        banks_free = self._l2_bank_free
        mem_channels = self._mem_channels
        mem_lat_min = self._mem_lat_min
        mem_span1 = self._mem_span1
        mem_occ = self._mem_occupancy
        channels_free = self._mem_channel_free
        owner = self.owner
        owner_get = owner.get
        owner_pop = owner.pop
        mshrs = self._mshrs[sm]
        mshr_free = mshrs.free_at
        mshr_n = mshrs.n
        worst = now + l1_lat
        hits = 0
        misses = 0
        l2_hits = 0
        l2_misses = 0
        owned_wb = 0
        for line in lines:
            cache_set = l1_sets[line % l1_nsets]
            # -1 sentinel: -1 >= ve4 is false (ve4 >= 0), and though
            # -1 & 2 is truthy, -1 >= ae4 is false too — a missing line
            # always falls through without an explicit None check.
            entry = cache_set.pop(line, -1)
            if entry >= ve4 or (entry & 2 and entry >= ae4):
                cache_set[line] = entry
                hits += 1
                continue
            misses += 1
            i = mshrs.idx
            mshrs.idx = (i + 1) % mshr_n
            start = mshr_free[i]
            if start < now:
                start = now
            mshr_free[i] = start + l2_lat_min
            holder = owner_get(line)
            if holder is not None and holder != sm:
                # Data is forwarded from the owning L1; ownership stays.
                # (inlined _forward_delay: directory tag lookup at home)
                bank = line % l2_banks
                bstart = banks_free[bank]
                if bstart < start:
                    bstart = start
                banks_free[bank] = bstart + bank_occ
                done = (bstart + bank_occ
                        + rl1_min + abs(sm - holder) % rl1_span1 + l1_lat)
            else:
                # --- L2 service (inlined _l2_service) ---
                bank = line % l2_banks
                bstart = banks_free[bank]
                if bstart < start:
                    bstart = start
                banks_free[bank] = bstart + bank_occ
                l2_lat = l2_lat_min + (bank + sm) % l2_span1
                l2_set = l2_sets[line % l2_nsets]
                l2_entry = l2_set.pop(line, -1)
                if l2_entry >= l2_live_min:
                    l2_set[line] = l2_entry
                    l2_hits += 1
                    done = bstart + bank_occ + l2_lat + l1_lat
                else:
                    l2_misses += 1
                    if len(l2_set) >= l2_assoc:
                        if l2_live_min:
                            l2_install(line, VALID)
                        else:
                            del l2_set[next(iter(l2_set))]
                            l2_set[line] = l2_packed_valid
                    else:
                        l2_set[line] = l2_packed_valid
                    channel = line % mem_channels
                    mstart = channels_free[channel]
                    issue = bstart + bank_occ
                    if mstart < issue:
                        mstart = issue
                    channels_free[channel] = mstart + mem_occ
                    done = (mstart + mem_occ
                            + mem_lat_min + (bank + sm) % mem_span1
                            + l2_lat + l1_lat)
            # --- L1 refill (inlined _install_l1 with state=VALID) ---
            if len(cache_set) >= l1_assoc:
                victim = None
                if ve4:
                    for cand, cand_entry in cache_set.items():
                        if cand_entry < ve4 and (
                            not cand_entry & 2 or cand_entry < ae4
                        ):
                            victim = cand
                            break
                if victim is None:
                    victim = next(iter(cache_set))
                    v_entry = cache_set[victim]
                    del cache_set[victim]
                    if v_entry & 3 == OWNED:
                        # Ownership writeback: registration returns to
                        # the L2 and occupies the victim's home bank.
                        owner_pop(victim, None)
                        vbank = victim % l2_banks
                        vstart = banks_free[vbank]
                        if vstart < now:
                            vstart = now
                        banks_free[vbank] = vstart + bank_occ
                        owned_wb += 1
                else:
                    del cache_set[victim]
            cache_set[line] = packed_valid
            if done > worst:
                worst = done
        stats = self.stats
        stats.l1_hits += hits
        stats.l1_misses += misses
        stats.l2_hits += l2_hits
        stats.l2_misses += l2_misses
        if owned_wb:
            extra = stats.extra
            extra["owned_writebacks"] = (
                extra.get("owned_writebacks", 0) + owned_wb
            )
        return worst

    # ------------------------------------------------------------------
    # Batched loads for the lockstep engine.  Same two-pass split as
    # GPUCoherence.load_batch (presence is time-independent; timing is a
    # replay of the resource queues), with one extra wrinkle: DeNovo's
    # L1 refills can evict OWNED victims whose ownership writeback
    # touches the victim's home bank *between* line services, and
    # remotely-owned lines take a directory-forward bank touch instead
    # of an L2 service.  Pass 1 therefore records an ordered *bank event
    # stream* — one service/forward event per miss (start = its MSHR
    # grant) interleaved with victim-writeback events (start = the
    # access's issue time) — and pass 2 runs one queue scan over the
    # whole stream so the bank timeline evolves exactly as scalar.
    # Stores keep the base generic loop: their ownership-registration
    # path is branch-heavy and cold next to pull's load volume.
    # ------------------------------------------------------------------
    def load_batch(
        self, sms: list, lines_seq: list, nows: list
    ) -> list:
        n_acc = len(sms)
        if n_acc < _BATCH_MIN:
            return MemorySystem.load_batch(self, sms, lines_seq, nows)
        cfg = self.config
        l1_lat = cfg.l1_hit_latency
        l1s = self.l1s
        l2 = self.l2
        l2_sets = l2._sets
        l2_nsets = l2.num_sets
        l2_assoc = l2.assoc
        l2_live_min = l2.valid_floor()
        l2_packed_valid = l2_live_min | VALID
        l2_install = l2.install
        l2_banks = self._l2_banks
        rl1_min = self._rl1_min
        rl1_span1 = self._rl1_span1
        owner_get = self.owner.get
        owner_pop = self.owner.pop
        hits = 0
        l2_hits = 0
        l2_misses = 0
        owned_wb = 0
        counts = [0] * n_acc
        miss_lines: list = []
        kinds: list = []      # per miss: 0=forwarded, 1=L2 hit, 2=L2 miss
        fwd_extra: list = []  # per miss: remote-L1 hop term (0 unless fwd)
        ev_bank: list = []    # per bank event: home bank
        ev_midx: list = []    # per bank event: miss index, or -1 (victim)
        ev_now: list = []     # per bank event: literal start for victims
        mi = 0
        # ---- pass 1: presence + ordered bank-event stream ----
        for i in range(n_acc):
            sm = sms[i]
            now = nows[i]
            l1 = l1s[sm]
            l1_sets = l1._sets
            l1_nsets = l1.num_sets
            l1_assoc = l1.assoc
            ve4 = l1.valid_floor()
            ae4 = l1.all_floor()
            packed_valid = ve4 | VALID
            nmiss = 0
            for line in lines_seq[i]:
                cache_set = l1_sets[line % l1_nsets]
                entry = cache_set.pop(line, -1)
                if entry >= ve4 or (entry & 2 and entry >= ae4):
                    cache_set[line] = entry
                    hits += 1
                    continue
                nmiss += 1
                miss_lines.append(line)
                ev_bank.append(line % l2_banks)
                ev_midx.append(mi)
                ev_now.append(0.0)
                holder = owner_get(line)
                if holder is not None and holder != sm:
                    kinds.append(0)
                    fwd_extra.append(
                        rl1_min + abs(sm - holder) % rl1_span1)
                else:
                    fwd_extra.append(0)
                    l2_set = l2_sets[line % l2_nsets]
                    l2_entry = l2_set.pop(line, -1)
                    if l2_entry >= l2_live_min:
                        l2_set[line] = l2_entry
                        kinds.append(1)
                        l2_hits += 1
                    else:
                        kinds.append(2)
                        l2_misses += 1
                        if len(l2_set) >= l2_assoc:
                            if l2_live_min:
                                l2_install(line, VALID)
                            else:
                                del l2_set[next(iter(l2_set))]
                                l2_set[line] = l2_packed_valid
                        else:
                            l2_set[line] = l2_packed_valid
                if len(cache_set) >= l1_assoc:
                    victim = None
                    if ve4:
                        for cand, cand_entry in cache_set.items():
                            if cand_entry < ve4 and (
                                not cand_entry & 2 or cand_entry < ae4
                            ):
                                victim = cand
                                break
                    if victim is None:
                        victim = next(iter(cache_set))
                        v_entry = cache_set[victim]
                        del cache_set[victim]
                        if v_entry & 3 == OWNED:
                            owner_pop(victim, None)
                            ev_bank.append(victim % l2_banks)
                            ev_midx.append(-1)
                            ev_now.append(now)
                            owned_wb += 1
                    else:
                        del cache_set[victim]
                cache_set[line] = packed_valid
                mi += 1
            counts[i] = nmiss
        m = mi
        stats = self.stats
        stats.l1_hits += hits
        stats.l1_misses += m
        stats.l2_hits += l2_hits
        stats.l2_misses += l2_misses
        if owned_wb:
            extra = stats.extra
            extra["owned_writebacks"] = (
                extra.get("owned_writebacks", 0) + owned_wb
            )
        now_f = np.asarray(nows, dtype=np.float64)
        res = now_f + l1_lat
        if not m:
            return res.tolist()
        # ---- pass 2: timing ----
        cnt = np.asarray(counts, dtype=np.int64)
        lines_arr = np.asarray(miss_lines, dtype=np.int64)
        sm_arr = np.repeat(np.asarray(sms, dtype=np.int64), cnt)
        now_arr = np.repeat(now_f, cnt)
        l2_lat_min = cfg.l2_latency_min
        mshr_start = np.empty(m, dtype=np.float64)
        for sm in np.unique(sm_arr).tolist():
            sel = sm_arr == sm
            mshr_start[sel] = ring_scan(
                self._mshrs[sm], now_arr[sel], l2_lat_min)
        bank_occ = cfg.l2_bank_occupancy
        ev_midx_arr = np.asarray(ev_midx, dtype=np.int64)
        ev_s = np.where(ev_midx_arr >= 0,
                        mshr_start[np.maximum(ev_midx_arr, 0)],
                        np.asarray(ev_now, dtype=np.float64))
        ev_start = queue_scan(
            np.asarray(ev_bank, dtype=np.int64), ev_s,
            self._l2_bank_free, bank_occ)
        bstart = ev_start[np.flatnonzero(ev_midx_arr >= 0)]
        banks = lines_arr % l2_banks
        l2_lat = l2_lat_min + (banks + sm_arr) % self._l2_span1
        kinds_arr = np.asarray(kinds, dtype=np.int8)
        # Forwarded misses pay the remote-L1 hop where the others pay
        # the NUCA L2 latency; L2 misses get overwritten below.
        done = bstart + bank_occ + l1_lat + np.where(
            kinds_arr == 0,
            np.asarray(fwd_extra, dtype=np.float64), l2_lat)
        mi2 = np.flatnonzero(kinds_arr == 2)
        if mi2.size:
            mem_occ = self._mem_occupancy
            channels = lines_arr[mi2] % self._mem_channels
            mstart = queue_scan(channels, bstart[mi2] + bank_occ,
                                self._mem_channel_free, mem_occ)
            done[mi2] = (mstart + mem_occ + self._mem_lat_min
                         + (banks[mi2] + sm_arr[mi2]) % self._mem_span1
                         + l2_lat[mi2] + l1_lat)
        nz = np.flatnonzero(cnt)
        seg_starts = (np.cumsum(cnt) - cnt)[nz]
        res[nz] = np.maximum(res[nz],
                             np.maximum.reduceat(done, seg_starts))
        return res.tolist()

    # ------------------------------------------------------------------
    # Deferred-timing loads (see MemorySystem.defer_load).  The presence
    # half is `load_batch`'s pass-1 body for a single access — including
    # the ordered bank-event stream with OWNED-victim writebacks and
    # directory-forward events — and `_flush_timing` (base) is its pass
    # 2 over the accumulated stream, with a scalar replay for tiny
    # flushes.
    # ------------------------------------------------------------------
    def defer_load(self, sm: int, lines: tuple, now: float) -> float | None:
        # Uncontended fast path: with no unsettled timing event at all,
        # the scalar path books every queue in defer order exactly.
        # The check is protocol-wide (not per-resource) because an
        # OWNED-victim eviction books a bank that cannot be predicted
        # before the presence pass.  Sequencer-only deferred atomics may
        # still be pending — loads never touch sequencers.
        if not self._d_ev and not self._d_force:
            return self.load(sm, lines, now)
        l1 = self.l1s[sm]
        l1_sets = l1._sets
        l1_nsets = l1.num_sets
        l1_assoc = l1.assoc
        ve4 = l1._valid_epoch << 2
        ae4 = l1._all_epoch << 2
        packed_valid = ve4 | VALID
        l2 = self.l2
        l2_sets = l2._sets
        l2_nsets = l2.num_sets
        l2_assoc = l2.assoc
        l2_live_min = l2._valid_epoch << 2
        l2_packed_valid = l2_live_min | VALID
        l2_banks = self._l2_banks
        l2_span1 = self._l2_span1
        l2_lat_min = self._l2_lat_min
        bank_occ = self.config.l2_bank_occupancy
        l1_lat = self.config.l1_hit_latency
        rl1_min = self._rl1_min
        rl1_span1 = self._rl1_span1
        mem_occ = self._mem_occupancy
        owner_get = self.owner.get
        owner_pop = self.owner.pop
        ev = self._d_ev
        pend_bank = self._d_pend_bank
        pend_chan = self._d_pend_chan
        hits = 0
        nmiss = 0
        l2_hits = 0
        l2_misses = 0
        owned_wb = 0
        lbx = 0.0
        for line in lines:
            cache_set = l1_sets[line % l1_nsets]
            entry = cache_set.pop(line, -1)
            if entry >= ve4 or (entry & 2 and entry >= ae4):
                cache_set[line] = entry
                hits += 1
                continue
            nmiss += 1
            bank = line % l2_banks
            pend_bank[bank] += 1
            holder = owner_get(line)
            if holder is not None and holder != sm:
                post = rl1_min + abs(sm - holder) % rl1_span1 + l1_lat
                ev.append((bank, 0.0, 1, bank_occ, -1, post, 0.0))
                if post > lbx:
                    lbx = post
            else:
                l2_lat = l2_lat_min + (bank + sm) % l2_span1
                l2_set = l2_sets[line % l2_nsets]
                l2_entry = l2_set.pop(line, -1)
                if l2_entry >= l2_live_min:
                    l2_set[line] = l2_entry
                    l2_hits += 1
                    post = l2_lat + l1_lat
                    ev.append((bank, 0.0, 1, bank_occ, -1, post, 0.0))
                    if post > lbx:
                        lbx = post
                else:
                    l2_misses += 1
                    if len(l2_set) >= l2_assoc:
                        if l2_live_min:
                            l2.install(line, VALID)
                        else:
                            del l2_set[next(iter(l2_set))]
                            l2_set[line] = l2_packed_valid
                    else:
                        l2_set[line] = l2_packed_valid
                    chan = line % self._mem_channels
                    mext = (self._mem_lat_min
                            + (bank + sm) % self._mem_span1
                            + l2_lat + l1_lat)
                    ev.append((bank, 0.0, 1, bank_occ, chan, 0.0, mext))
                    pend_chan[chan] += 1
                    v = mem_occ + mext
                    if v > lbx:
                        lbx = v
            if len(cache_set) >= l1_assoc:
                victim = None
                if ve4:
                    for cand, cand_entry in cache_set.items():
                        if cand_entry < ve4 and (
                            not cand_entry & 2 or cand_entry < ae4
                        ):
                            victim = cand
                            break
                if victim is None:
                    victim = next(iter(cache_set))
                    v_entry = cache_set[victim]
                    del cache_set[victim]
                    if v_entry & 3 == OWNED:
                        owner_pop(victim, None)
                        vbank = victim % l2_banks
                        ev.append((vbank, now, 0, bank_occ, -1, 0.0, 0.0))
                        pend_bank[vbank] += 1
                        owned_wb += 1
                else:
                    del cache_set[victim]
            cache_set[line] = packed_valid
        stats = self.stats
        stats.l1_hits += hits
        if not nmiss:
            return now + l1_lat
        stats.l1_misses += nmiss
        stats.l2_hits += l2_hits
        stats.l2_misses += l2_misses
        if owned_wb:
            extra = stats.extra
            extra["owned_writebacks"] = (
                extra.get("owned_writebacks", 0) + owned_wb
            )
        self._d_pend_mshr[sm] += nmiss
        self._d_l_rec.append((now, nmiss, sm))
        self._d_jobs.append(0)
        self._d_lb = now + bank_occ + lbx
        return None

    def _all_local(self, sm: int, pairs: tuple) -> bool:
        """True when every pair is locally owned, live in this L1, and
        free of pending deferred sequencer work — i.e. the instruction
        touches no shared timing resource and may resolve inline."""
        l1 = self.l1s[sm]
        l1_sets = l1._sets
        l1_nsets = l1.num_sets
        ae4 = l1._all_epoch << 2
        owner_get = self.owner.get
        seq_pending = self._d_seq_pending
        for line, _count in pairs:
            if owner_get(line) != sm or line in seq_pending:
                return False
            entry = l1_sets[line % l1_nsets].get(line, -1)
            if not (entry & 2 and entry >= ae4):
                return False
        return True

    def _defer_atomic_pairs(
        self, sm: int, pairs: tuple, floor: float, issue: float
    ) -> tuple[list, int, float]:
        """Presence half of one atomic instruction; records its events.

        Returns ``(prec, lanes, lb)``: per-pair settle records, the lane
        count, and a sound completion lower bound.
        """
        cfg = self.config
        l1 = self.l1s[sm]
        l1_sets = l1._sets
        l1_nsets = l1.num_sets
        ae4 = l1._all_epoch << 2
        l1_lat = cfg.l1_hit_latency
        atomic_occ = cfg.atomic_occupancy
        bank_occ = cfg.l2_bank_occupancy
        l2_banks = self._l2_banks
        l2_span1 = self._l2_span1
        l2_lat_min = self._l2_lat_min
        rl1_min = self._rl1_min
        rl1_span1 = self._rl1_span1
        l1s = self.l1s
        owner = self.owner
        owner_get = owner.get
        owner_pop = owner.pop
        last_sm = self._last_atomic_sm
        last_get = last_sm.get
        seq_add = self._d_seq_pending.add
        ev = self._d_ev
        pend_bank = self._d_pend_bank
        pend_chan = self._d_pend_chan
        l2 = self.l2
        l2_sets = l2._sets
        l2_nsets = l2.num_sets
        l2_assoc = l2.assoc
        l2_live_min = l2._valid_epoch << 2
        l2_packed_valid = l2_live_min | VALID
        stats = self.stats
        own_lat_min = l2_lat_min if l2_lat_min < rl1_min else rl1_min
        prec = []
        lanes = 0
        local = 0
        remote = 0
        lb = floor
        for line, count in pairs:
            lanes += count
            holder = owner_get(line)
            if holder == sm:
                l1_set = l1_sets[line % l1_nsets]
                entry = l1_set.get(line, -1)
                if entry & 2 and entry >= ae4:
                    del l1_set[line]
                    l1_set[line] = entry  # touch LRU
                    local += count
                    last_sm[line] = sm
                    prec.append((0, line, count))
                    seq_add(line)
                    lb_pair = floor + count + 2 * l1_lat
                    if lb_pair > lb:
                        lb = lb_pair
                    continue
            if holder is None or last_get(line) == sm:
                last_sm[line] = sm
                eidx = len(ev)
                bank = line % l2_banks
                pend_bank[bank] += 1
                if holder is not None and holder != sm:
                    # `_acquire_ownership` transfer arm: directory
                    # forward at the home bank, then the remote-L1 hop.
                    stats.atomics_remote_transfer += 1
                    l1s[holder].invalidate(line)
                    ev.append((bank, issue, 0, bank_occ, -1,
                               rl1_min + abs(sm - holder) % rl1_span1, 0.0))
                else:
                    # `_acquire_ownership` L2-service arm.
                    l2_lat = l2_lat_min + (bank + sm) % l2_span1
                    l2_set = l2_sets[line % l2_nsets]
                    l2_entry = l2_set.pop(line, -1)
                    if l2_entry >= l2_live_min:
                        l2_set[line] = l2_entry
                        stats.l2_hits += 1
                        ev.append((bank, issue, 0, bank_occ, -1,
                                   l2_lat, 0.0))
                    else:
                        stats.l2_misses += 1
                        if len(l2_set) >= l2_assoc:
                            if l2_live_min:
                                l2.install(line, VALID)
                            else:
                                del l2_set[next(iter(l2_set))]
                                l2_set[line] = l2_packed_valid
                        else:
                            l2_set[line] = l2_packed_valid
                        chan = line % self._mem_channels
                        ev.append((bank, issue, 0, bank_occ, chan, 0.0,
                                   self._mem_lat_min
                                   + (bank + sm) % self._mem_span1
                                   + l2_lat))
                        pend_chan[chan] += 1
                stats.ownership_registrations += 1
                owner[line] = sm
                evicted = l1.install(line, OWNED)
                if evicted is not None and evicted[1] == OWNED:
                    victim = evicted[0]
                    owner_pop(victim, None)
                    vbank = victim % l2_banks
                    ev.append((vbank, issue, 0, bank_occ, -1, 0.0, 0.0))
                    pend_bank[vbank] += 1
                    extra = stats.extra
                    extra["owned_writebacks"] = (
                        extra.get("owned_writebacks", 0) + 1)
                prec.append((1, line, count, eidx))
                seq_add(line)
                arrival_min = issue + bank_occ + own_lat_min
                if floor > arrival_min:
                    arrival_min = floor
                lb_pair = arrival_min + count + l1_lat
                if lb_pair > lb:
                    lb = lb_pair
                continue
            last_sm[line] = sm
            remote += count
            l1s[holder].lookup(line)
            eidx = len(ev)
            bank = line % l2_banks
            ev.append((bank, issue, 0, bank_occ, -1, 0.0, 0.0))
            pend_bank[bank] += 1
            prec.append((2, line, count, holder, eidx))
            seq_add(line)
            fwd_min = issue + bank_occ
            if floor > fwd_min:
                fwd_min = floor
            lb_pair = fwd_min + count * atomic_occ + rl1_min
            if lb_pair > lb:
                lb = lb_pair
        stats.atomics += lanes
        if local:
            stats.atomics_local += local
        if remote:
            stats.atomics_remote_transfer += remote
        return prec, lanes, lb

    def defer_atomic(
        self, sm: int, pairs: tuple, floor: float, issue: float
    ) -> tuple[float | None, int, float]:
        # Inline fast paths.  With no unsettled timing event and no
        # pending sequencer line there are no deferred jobs at all, so
        # the scalar loop books every queue in defer order exactly.
        # Fully local instructions touch only their own lines'
        # sequencers and may resolve inline even with work pending on
        # other resources.  Deferring either case would thrash the
        # flush floor (a local completion can be as little as
        # floor + 3).
        if not self._d_force and (
                (not self._d_ev and not self._d_seq_pending)
                or self._all_local(sm, pairs)):
            done, lanes = self.atomic_round(sm, pairs, floor, issue)
            return done, lanes, 0.0
        prec, lanes, lb = self._defer_atomic_pairs(sm, pairs, floor, issue)
        self._d_jobs.append((1, sm, floor, prec))
        self._d_lb = lb
        return None, lanes, lb

    def defer_atomic_window(
        self, sm: int, pairs: tuple, now: float,
        outstanding: list, window: int,
    ) -> tuple[float | None, float | None, float]:
        if (not self._d_force
                and id(outstanding) not in self._d_win_ids
                and ((not self._d_ev and not self._d_seq_pending)
                     or self._all_local(sm, pairs))):
            t, last = self.atomic_window(sm, pairs, now, outstanding, window)
            return t, last, 0.0
        prec, _, lb = self._defer_atomic_pairs(sm, pairs, now, now)
        self._d_jobs.append((2, sm, now, prec, outstanding, window))
        self._d_win_ids.add(id(outstanding))
        self._d_lb = lb
        return None, None, lb

    def flush_deferred(self) -> list:
        jobs = self._d_jobs
        if not jobs:
            return []
        self._d_jobs = []
        self._d_seq_pending.clear()
        self._d_win_ids.clear()
        service, load_res = self._flush_timing()
        cfg = self.config
        l1_lat = cfg.l1_hit_latency
        atomic_occ = cfg.atomic_occupancy
        l1_atomic_occ = cfg.l1_atomic_occupancy
        l1_atomic_free = self._l1_atomic_free
        rl1_min = self._rl1_min
        rl1_span1 = self._rl1_span1
        sequencer = self.sequencer
        seq_get = sequencer.get
        out = []
        li = 0
        for job in jobs:
            if job == 0:
                out.append(load_res[li])
                li += 1
            elif job[0] == 1:
                _, sm, floor, prec = job
                done = floor
                for rec in prec:
                    path = rec[0]
                    line = rec[1]
                    count = rec[2]
                    if path == 0:
                        start = seq_get(line, 0.0)
                        arrival = floor + l1_lat
                        if start < arrival:
                            start = arrival
                        sequencer[line] = start + count
                        completion = start + count + l1_lat
                    elif path == 1:
                        arrival = service[rec[3]]
                        if arrival < floor:
                            arrival = floor
                        start = seq_get(line, 0.0)
                        if start < arrival:
                            start = arrival
                        sequencer[line] = start + count
                        completion = start + count + l1_lat
                    else:
                        holder = rec[3]
                        forwarded = service[rec[4]]
                        rmw_hold = count * atomic_occ
                        unit = l1_atomic_free[holder]
                        unit_start = unit if unit > forwarded else forwarded
                        l1_atomic_free[holder] = (unit_start
                                                  + l1_atomic_occ + count)
                        start = seq_get(line, 0.0)
                        if unit_start > start:
                            start = unit_start
                        if floor > start:
                            start = floor
                        sequencer[line] = start + rmw_hold
                        completion = (start + rmw_hold + rl1_min
                                      + abs(sm - holder) % rl1_span1)
                    if completion > done:
                        done = completion
                out.append(done)
            else:
                _, sm, now, prec, outstanding, window = job
                t = now
                last = now
                for rec in prec:
                    while outstanding and outstanding[0] <= t:
                        del outstanding[0]
                    if len(outstanding) >= window:
                        t = outstanding.pop(0)
                    path = rec[0]
                    line = rec[1]
                    count = rec[2]
                    if path == 0:
                        start = seq_get(line, 0.0)
                        arrival = t + l1_lat
                        if start < arrival:
                            start = arrival
                        sequencer[line] = start + count
                        completion = start + count + l1_lat
                    elif path == 1:
                        arrival = service[rec[3]]
                        if arrival < t:
                            arrival = t
                        start = seq_get(line, 0.0)
                        if start < arrival:
                            start = arrival
                        sequencer[line] = start + count
                        completion = start + count + l1_lat
                    else:
                        holder = rec[3]
                        forwarded = service[rec[4]]
                        rmw_hold = count * atomic_occ
                        unit = l1_atomic_free[holder]
                        unit_start = unit if unit > forwarded else forwarded
                        l1_atomic_free[holder] = (unit_start
                                                  + l1_atomic_occ + count)
                        start = seq_get(line, 0.0)
                        if unit_start > start:
                            start = unit_start
                        if t > start:
                            start = t
                        sequencer[line] = start + rmw_hold
                        completion = (start + rmw_hold + rl1_min
                                      + abs(sm - holder) % rl1_span1)
                    if completion > last:
                        last = completion
                    insort(outstanding, completion)
                out.append(last)
        return out

    def store(self, sm: int, lines: tuple, now: float) -> tuple[float, float]:
        cfg = self.config
        l1 = self.l1s[sm]
        l1_sets = l1._sets
        l1_nsets = l1.num_sets
        ae4 = l1._all_epoch << 2
        l1_lat = cfg.l1_hit_latency
        buf_hold = cfg.l2_latency_min + cfg.l2_bank_occupancy
        buffers = self._store_buffers[sm]
        buf_free = buffers.free_at
        buf_n = buffers.n
        acquire_ownership = self._acquire_ownership
        accept = now
        drain = now
        for line in lines:
            # Inlined peek + LRU-touch: a live OWNED packed entry has
            # bit 2 set and survives the ALL epoch (see `atomic`).
            l1_set = l1_sets[line % l1_nsets]
            entry = l1_set.get(line, -1)
            if entry & 2 and entry >= ae4:
                # Registered writes complete locally and need no flush.
                del l1_set[line]
                l1_set[line] = entry  # touch LRU
                done = now + l1_lat
            else:
                i = buffers.idx
                buffers.idx = (i + 1) % buf_n
                start = buf_free[i]
                if start < now:
                    start = now
                buf_free[i] = start + buf_hold
                if start > accept:
                    accept = start
                done = acquire_ownership(sm, line, start)
            if done > drain:
                drain = done
        self.stats.stores += len(lines)
        return accept, drain

    def atomic(
        self, sm: int, line: int, count: int, now: float,
        issue: float | None = None,
    ) -> float:
        cfg = self.config
        if issue is None:
            issue = now
        stats = self.stats
        stats.atomics += count
        holder = self.owner.get(line)
        if holder == sm:
            # Synchronization locality: the atomic never leaves the core.
            # Locally-owned atomics flow through the L1's write pipeline
            # (serialized only per line), which is the whole point of
            # registration — they are nearly as cheap as L1 stores.
            # The peek + LRU-touch pair is inlined into one dict probe;
            # a live OWNED packed entry has bit 2 set and survives the
            # ALL epoch.
            l1 = self.l1s[sm]
            l1_set = l1._sets[line % l1.num_sets]
            entry = l1_set.get(line)
            if entry is not None and entry & 2 and entry >= (
                l1._all_epoch << 2
            ):
                del l1_set[line]
                l1_set[line] = entry  # touch LRU
                stats.atomics_local += count
                self._last_atomic_sm[line] = sm
                l1_lat = cfg.l1_hit_latency
                start = self.sequencer.get(line, 0.0)
                arrival = now + l1_lat
                if start < arrival:
                    start = arrival
                self.sequencer[line] = start + count
                return start + count + l1_lat
        if holder is None:
            # Unowned: register ownership at the requester via the L2
            # directory, then execute locally.
            self._last_atomic_sm[line] = sm
            arrival = self._acquire_ownership(sm, line, issue)
            if arrival < now:
                arrival = now
            start = self.sequencer.get(line, 0.0)
            if start < arrival:
                start = arrival
            self.sequencer[line] = start + count
            return start + count + cfg.l1_hit_latency
        # Owned elsewhere.  Migratory detection: if this core also issued
        # the line's previous atomic, the sharing is migratory (e.g. a
        # thread block hammering its own window from a new SM after
        # rescheduling) and ownership transfers; otherwise the atomic is
        # forwarded and executes at the owner's L1 (contended lines stay
        # put instead of ping-ponging).
        if self._last_atomic_sm.get(line) == sm:
            self._last_atomic_sm[line] = sm
            # The transfer's directory/bank work is booked at issue time;
            # the RMW waits for the line's prior operations.
            arrival = self._acquire_ownership(sm, line, issue)
            if arrival < now:
                arrival = now
            start = self.sequencer.get(line, 0.0)
            if start < arrival:
                start = arrival
            self.sequencer[line] = start + count
            return start + count + cfg.l1_hit_latency
        self._last_atomic_sm[line] = sm
        # Forwarded execution: the RMWs serialize on the line at the same
        # rate as an L2 atomic unit would, and the *message* occupies the
        # owner core's single network ingress/atomic unit — which is what
        # makes scattered single-lane updates (low-reuse workloads) prefer
        # GPU coherence's 16 banked L2 units, while batched updates to hot
        # lines amortize the ingress cost.
        self.stats.atomics_remote_transfer += count
        # The owner's L1 keeps the line hot: forwarded atomics refresh it.
        self.l1s[holder].lookup(line)
        rmw_hold = count * cfg.atomic_occupancy
        ingress_hold = cfg.l1_atomic_occupancy + count
        # Forwarding and the owner-unit occupancy are booked at issue
        # time (the message travels immediately); the RMW additionally
        # waits for the program-order floor and prior same-line work.
        forwarded = self._forward_delay(line, issue)
        unit = self._l1_atomic_free[holder]
        unit_start = unit if unit > forwarded else forwarded
        self._l1_atomic_free[holder] = unit_start + ingress_hold
        start = self.sequencer.get(line, 0.0)
        if unit_start > start:
            start = unit_start
        if now > start:
            start = now
        self.sequencer[line] = start + rmw_hold
        return (start + rmw_hold
                + self._rl1_min + abs(sm - holder) % self._rl1_span1)

    def acquire(self, sm: int) -> int:
        self.stats.acquires += 1
        self.l1s[sm].invalidate_valid()
        return self.config.l1_hit_latency

    # ------------------------------------------------------------------
    # Batched atomics: one call per warp atomic instruction with the
    # per-pair body of `atomic` inlined (see GPUCoherence for the same
    # structure).  The ownership-transfer branches stay method calls —
    # they are rare next to the local/forwarded fast paths.  Epochs and
    # the set dicts are loop invariants: `_acquire_ownership` only ever
    # single-line-invalidates *other* L1s.
    # ------------------------------------------------------------------
    def atomic_round(
        self, sm: int, pairs: tuple, floor: float, issue: float
    ) -> tuple[float, int]:
        cfg = self.config
        l1 = self.l1s[sm]
        l1_sets = l1._sets
        l1_nsets = l1.num_sets
        ae4 = l1._all_epoch << 2
        l1_lat = cfg.l1_hit_latency
        atomic_occ = cfg.atomic_occupancy
        l1_atomic_occ = cfg.l1_atomic_occupancy
        bank_occ = cfg.l2_bank_occupancy
        l2_banks = self._l2_banks
        banks_free = self._l2_bank_free
        l1_atomic_free = self._l1_atomic_free
        rl1_min = self._rl1_min
        rl1_span1 = self._rl1_span1
        l1s = self.l1s
        owner_get = self.owner.get
        last_sm = self._last_atomic_sm
        last_get = last_sm.get
        acquire_ownership = self._acquire_ownership
        sequencer = self.sequencer
        seq_get = sequencer.get
        done = floor
        lanes = 0
        local = 0
        remote = 0
        for line, count in pairs:
            lanes += count
            holder = owner_get(line)
            if holder == sm:
                l1_set = l1_sets[line % l1_nsets]
                entry = l1_set.get(line, -1)
                if entry & 2 and entry >= ae4:
                    del l1_set[line]
                    l1_set[line] = entry  # touch LRU
                    local += count
                    last_sm[line] = sm
                    start = seq_get(line, 0.0)
                    arrival = floor + l1_lat
                    if start < arrival:
                        start = arrival
                    sequencer[line] = start + count
                    completion = start + count + l1_lat
                    if completion > done:
                        done = completion
                    continue
            if holder is None or last_get(line) == sm:
                last_sm[line] = sm
                arrival = acquire_ownership(sm, line, issue)
                if arrival < floor:
                    arrival = floor
                start = seq_get(line, 0.0)
                if start < arrival:
                    start = arrival
                sequencer[line] = start + count
                completion = start + count + l1_lat
                if completion > done:
                    done = completion
                continue
            last_sm[line] = sm
            remote += count
            l1s[holder].lookup(line)
            rmw_hold = count * atomic_occ
            ingress_hold = l1_atomic_occ + count
            # (inlined _forward_delay at issue time)
            bank = line % l2_banks
            fstart = banks_free[bank]
            if fstart < issue:
                fstart = issue
            banks_free[bank] = fstart + bank_occ
            forwarded = fstart + bank_occ
            unit = l1_atomic_free[holder]
            unit_start = unit if unit > forwarded else forwarded
            l1_atomic_free[holder] = unit_start + ingress_hold
            start = seq_get(line, 0.0)
            if unit_start > start:
                start = unit_start
            if floor > start:
                start = floor
            sequencer[line] = start + rmw_hold
            completion = (start + rmw_hold
                          + rl1_min + abs(sm - holder) % rl1_span1)
            if completion > done:
                done = completion
        stats = self.stats
        stats.atomics += lanes
        if local:
            stats.atomics_local += local
        if remote:
            stats.atomics_remote_transfer += remote
        return done, lanes

    def atomic_window(
        self, sm: int, pairs: tuple, now: float,
        outstanding: list, window: int,
    ) -> tuple[float, float]:
        cfg = self.config
        l1 = self.l1s[sm]
        l1_sets = l1._sets
        l1_nsets = l1.num_sets
        ae4 = l1._all_epoch << 2
        l1_lat = cfg.l1_hit_latency
        atomic_occ = cfg.atomic_occupancy
        l1_atomic_occ = cfg.l1_atomic_occupancy
        bank_occ = cfg.l2_bank_occupancy
        l2_banks = self._l2_banks
        banks_free = self._l2_bank_free
        l1_atomic_free = self._l1_atomic_free
        rl1_min = self._rl1_min
        rl1_span1 = self._rl1_span1
        l1s = self.l1s
        owner_get = self.owner.get
        last_sm = self._last_atomic_sm
        last_get = last_sm.get
        acquire_ownership = self._acquire_ownership
        sequencer = self.sequencer
        seq_get = sequencer.get
        t = now
        last = now
        lanes = 0
        local = 0
        remote = 0
        for line, count in pairs:
            while outstanding and outstanding[0] <= t:
                del outstanding[0]
            if len(outstanding) >= window:
                t = outstanding.pop(0)
            lanes += count
            holder = owner_get(line)
            if holder == sm:
                l1_set = l1_sets[line % l1_nsets]
                entry = l1_set.get(line, -1)
                if entry & 2 and entry >= ae4:
                    del l1_set[line]
                    l1_set[line] = entry  # touch LRU
                    local += count
                    last_sm[line] = sm
                    start = seq_get(line, 0.0)
                    arrival = t + l1_lat
                    if start < arrival:
                        start = arrival
                    sequencer[line] = start + count
                    completion = start + count + l1_lat
                    if completion > last:
                        last = completion
                    insort(outstanding, completion)
                    continue
            if holder is None or last_get(line) == sm:
                last_sm[line] = sm
                arrival = acquire_ownership(sm, line, now)
                if arrival < t:
                    arrival = t
                start = seq_get(line, 0.0)
                if start < arrival:
                    start = arrival
                sequencer[line] = start + count
                completion = start + count + l1_lat
                if completion > last:
                    last = completion
                insort(outstanding, completion)
                continue
            last_sm[line] = sm
            remote += count
            l1s[holder].lookup(line)
            rmw_hold = count * atomic_occ
            ingress_hold = l1_atomic_occ + count
            # (inlined _forward_delay at issue time)
            bank = line % l2_banks
            fstart = banks_free[bank]
            if fstart < now:
                fstart = now
            banks_free[bank] = fstart + bank_occ
            forwarded = fstart + bank_occ
            unit = l1_atomic_free[holder]
            unit_start = unit if unit > forwarded else forwarded
            l1_atomic_free[holder] = unit_start + ingress_hold
            start = seq_get(line, 0.0)
            if unit_start > start:
                start = unit_start
            if t > start:
                start = t
            sequencer[line] = start + rmw_hold
            completion = (start + rmw_hold
                          + rl1_min + abs(sm - holder) % rl1_span1)
            if completion > last:
                last = completion
            insort(outstanding, completion)
        stats = self.stats
        stats.atomics += lanes
        if local:
            stats.atomics_local += local
        if remote:
            stats.atomics_remote_transfer += remote
        return t, last
