"""Coherence protocols: GPU coherence and DeNovo."""

from .base import MemoryStats, MemorySystem
from .denovo import DeNovoCoherence
from .gpu import GPUCoherence

__all__ = [
    "MemorySystem",
    "MemoryStats",
    "GPUCoherence",
    "DeNovoCoherence",
    "make_memory_system",
]


def make_memory_system(protocol: str, config) -> MemorySystem:
    """Instantiate a protocol by name: ``gpu`` or ``denovo``."""
    if protocol == "gpu":
        return GPUCoherence(config)
    if protocol == "denovo":
        return DeNovoCoherence(config)
    raise ValueError(f"unknown coherence protocol {protocol!r}")
