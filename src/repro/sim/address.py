"""Address-space layout for the traced kernels.

Each logical data structure (CSR offsets, edge lists, double-buffered
vertex properties, per-app auxiliaries) lives in its own region of a flat
address space so cache behaviour distinguishes them.  Regions are spaced
far apart; lines are identified by integer ids (byte address divided by
the line size).
"""

from __future__ import annotations

import numpy as np

__all__ = ["AddressMap"]

_REGION_SPACING_LINES = 1 << 24


class AddressMap:
    """Maps (region, element index) pairs to cache-line ids.

    Regions are created on first use; element indices within a region map
    to lines assuming densely packed ``element_bytes``-sized elements.
    """

    def __init__(self, line_bytes: int = 64, element_bytes: int = 4) -> None:
        if line_bytes % element_bytes != 0:
            raise ValueError("line_bytes must be a multiple of element_bytes")
        self.line_bytes = line_bytes
        self.element_bytes = element_bytes
        self.elements_per_line = line_bytes // element_bytes
        self._regions: dict[str, int] = {}

    def region_base(self, region: str) -> int:
        """Base line id of a named region (created on first use)."""
        if region not in self._regions:
            self._regions[region] = len(self._regions) * _REGION_SPACING_LINES
        return self._regions[region]

    def line(self, region: str, index: int) -> int:
        """Line id holding element ``index`` of ``region``."""
        return self.region_base(region) + index // self.elements_per_line

    def lines(self, region: str, indices) -> np.ndarray:
        """Sorted unique line ids covering the given element indices."""
        base = self.region_base(region)
        indices = np.asarray(indices, dtype=np.int64)
        return np.unique(base + indices // self.elements_per_line)

    def line_range(self, region: str, start: int, stop: int) -> np.ndarray:
        """Line ids covering the contiguous element range [start, stop)."""
        if stop <= start:
            return np.empty(0, dtype=np.int64)
        base = self.region_base(region)
        first = start // self.elements_per_line
        last = (stop - 1) // self.elements_per_line
        return base + np.arange(first, last + 1, dtype=np.int64)

    def line_counts(self, region: str, indices) -> list[tuple[int, int]]:
        """(line, count) pairs for the given element indices.

        Used for atomic ops, where multiple updates to the same line
        serialize at the owning cache.
        """
        base = self.region_base(region)
        indices = np.asarray(indices, dtype=np.int64)
        lines, counts = np.unique(
            base + indices // self.elements_per_line, return_counts=True
        )
        return list(zip(lines.tolist(), counts.tolist()))
