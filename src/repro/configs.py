"""System configurations and the paper's three-letter naming (Section V-D).

A configuration is one point in the 3-D design space: update propagation
(pull / push / dynamic push+pull), coherence protocol (GPU / DeNovo), and
consistency model (DRF0 / DRF1 / DRFrlx).  Codes read left to right:

* ``T`` target (pull), ``S`` source (push), ``D`` dynamic (push+pull);
* ``G`` GPU coherence, ``D`` DeNovo;
* ``0`` DRF0, ``1`` DRF1, ``R`` DRFrlx.

``SGR`` is therefore push + GPU coherence + DRFrlx, the paper's most
frequent winner; ``TG0`` is the canonical pull baseline; ``DD1`` the
predicted configuration for CC.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Configuration",
    "parse_config",
    "all_configurations",
    "figure5_configurations",
    "PULL_BASELINE",
    "PUSH_DEFAULT",
]

_DIRECTIONS = {"T": "pull", "S": "push", "D": "dynamic"}
_DIRECTION_CODES = {v: k for k, v in _DIRECTIONS.items()}
_COHERENCE = {"G": "gpu", "D": "denovo"}
_COHERENCE_CODES = {v: k for k, v in _COHERENCE.items()}
_CONSISTENCY = {"0": "drf0", "1": "drf1", "R": "drfrlx"}
_CONSISTENCY_CODES = {v: k for k, v in _CONSISTENCY.items()}


@dataclass(frozen=True)
class Configuration:
    """One (direction, coherence, consistency) system configuration."""

    direction: str  # 'pull' | 'push' | 'dynamic'
    coherence: str  # 'gpu' | 'denovo'
    consistency: str  # 'drf0' | 'drf1' | 'drfrlx'

    def __post_init__(self) -> None:
        if self.direction not in _DIRECTION_CODES:
            raise ValueError(f"bad direction {self.direction!r}")
        if self.coherence not in _COHERENCE_CODES:
            raise ValueError(f"bad coherence {self.coherence!r}")
        if self.consistency not in _CONSISTENCY_CODES:
            raise ValueError(f"bad consistency {self.consistency!r}")

    @property
    def code(self) -> str:
        """The paper's three-letter code (e.g. 'SGR')."""
        return (
            _DIRECTION_CODES[self.direction]
            + _COHERENCE_CODES[self.coherence]
            + _CONSISTENCY_CODES[self.consistency]
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.code


def parse_config(code: str) -> Configuration:
    """Parse a three-letter code like 'SGR' into a Configuration."""
    if len(code) != 3:
        raise ValueError(f"configuration code must be 3 letters: {code!r}")
    d, c, m = code[0].upper(), code[1].upper(), code[2].upper()
    if d not in _DIRECTIONS or c not in _COHERENCE or m not in _CONSISTENCY:
        raise ValueError(f"unknown configuration code {code!r}")
    return Configuration(_DIRECTIONS[d], _COHERENCE[c], _CONSISTENCY[m])


def all_configurations(traversal: str = "static") -> list[Configuration]:
    """The 12-point design space for an application's traversal type.

    Static-traversal apps choose pull or push (but pull performs no
    fine-grained atomics, so its coherence/consistency variants collapse —
    the paper keeps only TG0); dynamic apps are push+pull with all four
    coherence x {DRF1, DRFrlx} combinations plus DRF0 variants.
    """
    if traversal == "dynamic":
        return [
            Configuration("dynamic", coh, con)
            for coh in ("gpu", "denovo")
            for con in ("drf0", "drf1", "drfrlx")
        ]
    configs = [Configuration("pull", "gpu", "drf0")]
    configs += [
        Configuration("push", coh, con)
        for coh in ("gpu", "denovo")
        for con in ("drf0", "drf1", "drfrlx")
    ]
    return configs


def figure5_configurations(traversal: str = "static") -> list[Configuration]:
    """The configurations shown per workload in Figure 5.

    Static apps: TG0, SG1, SGR, SD1, SDR (push DRF0 omitted — atomics make
    it uniformly poor).  Dynamic apps (CC): DG1, DGR, DD1, DDR.
    """
    if traversal == "dynamic":
        return [parse_config(c) for c in ("DG1", "DGR", "DD1", "DDR")]
    return [parse_config(c) for c in ("TG0", "SG1", "SGR", "SD1", "SDR")]


PULL_BASELINE = parse_config("TG0")
PUSH_DEFAULT = parse_config("SGR")
