"""Command-line interface: ``python -m repro <command>``.

Commands
--------
datasets              list the six dataset stand-ins and their classes
profile GRAPH         Table II profile of one dataset (or a .mtx file)
predict GRAPH APP     model prediction + decision-tree walkthrough
run GRAPH APP         simulate the Figure 5 configurations for a workload
sweep                 the full sweep: six graphs x the registered
                      applications (slow)
worker QUEUE_DIR      join a multi-node sweep as one worker node

``GRAPH`` is one of AMZ DCT EML OLS RAJ WNG (built at its simulation
scale) or a path to a Matrix Market file (profiled against the full-size
Table IV machine).

``run`` and ``sweep`` execute through the ``repro.runtime`` layer:
results are memoized per workload in a content-addressed cache
(``--cache-dir DIR``, ``--no-cache``), and ``sweep --jobs N`` fans
workloads across N worker processes.  ``sweep --graphs``/``--apps``
restrict the sweep to a subset of the graph x application matrix (the
paper's six apps plus the frontier-IR additions BFS, KC, TC, LP).

Observability (``repro.obs``) is off by default and never changes
modeled numbers: ``--events PATH`` streams typed runtime events (unit
lifecycle, retries, crashes, pool recycles, cache traffic) to a
JSON-lines log that ``tools/events_to_chrometrace.py`` renders as a
Chrome trace; ``--metrics`` prints an end-of-run metrics summary
(counters + histograms, including the ``--profile`` collector when both
are on).

Execution is fault tolerant: failing workloads are retried
(``--retries``), optionally bounded by a per-workload wall-clock
``--timeout``.  Under ``--keep-going`` (the default) a sweep completes
with the failed workloads reported separately (exit status 1);
``--fail-fast`` aborts on the first workload that exhausts its retries.
``--manifest PATH`` journals every outcome to a JSON-lines file as it
happens, so an interrupted sweep resumes from cache + manifest —
``sweep --resume MANIFEST`` wires that up in one flag and reports how
much of the sweep is already banked before re-running the rest.

``sweep --backend multinode`` runs the sweep across ``--nodes N``
supervised worker processes coordinated through a crash-safe filesystem
work queue (``--queue-dir DIR`` to place it somewhere shared and
inspectable).  Additional nodes — on this machine or any machine
mounting the same filesystem — join with ``repro worker QUEUE_DIR``;
a node killed mid-unit costs one lease reclaim, never the sweep.
"""

from __future__ import annotations

import argparse
import math
import sys

from .configs import parse_config
from .graph import DEFAULT_SIM_SCALE, PAPER_DATASETS, load_dataset, load_mtx
from .graph.builders import normalize
from .graph.generators import attach_random_weights
from .harness import render_breakdown_bars, render_table
from .model import explain_prediction, predict_configuration
from .runtime import (
    BACKENDS,
    DEFAULT_LEASE_TTL,
    GraphRef,
    ResultCache,
    RetryPolicy,
    UnitExecutionError,
    UnitFailure,
    WorkloadSpec,
    run_plan,
)
from .sim.config import DEFAULT_SYSTEM, ENGINES, scaled_system, \
    set_default_engine
from .taxonomy import APP_PROPERTIES, profile_graph, profile_workload

__all__ = ["main"]


def _resolve_graph(name: str):
    """Return (graph, scale) for a dataset key or a .mtx path."""
    if name.upper() in PAPER_DATASETS:
        key = name.upper()
        scale = DEFAULT_SIM_SCALE[key]
        return load_dataset(key, scale=scale), scale
    graph = attach_random_weights(normalize(load_mtx(name)))
    return graph, 1


def _resolve_ref(name: str) -> GraphRef:
    """A runtime graph reference for a dataset key or a .mtx path."""
    if name.upper() in PAPER_DATASETS:
        return GraphRef.dataset(name.upper())
    return GraphRef.mtx(name)


def _resolve_cache(args) -> ResultCache | None:
    """The result cache the flags select (None under ``--no-cache``)."""
    if args.no_cache:
        return None
    return ResultCache(args.cache_dir)


def _resolve_policy(args) -> RetryPolicy | None:
    """A retry policy when the flags override the defaults, else None."""
    if args.retries is None and args.timeout is None:
        return None
    defaults = RetryPolicy()
    return RetryPolicy(
        max_attempts=args.retries if args.retries is not None
        else defaults.max_attempts,
        timeout=args.timeout,
    )


def _fault_kwargs(args) -> dict:
    """run_plan/run_sweep keywords selected by the fault-tolerance flags."""
    return {
        "policy": _resolve_policy(args),
        "keep_going": args.keep_going,
        "manifest": args.manifest,
    }


def _print_failure(failure: UnitFailure) -> None:
    print(f"failed: {failure.label}: [{failure.kind}] {failure.exception} "
          f"after {failure.attempts} attempt(s): {failure.message}",
          file=sys.stderr)


def _profile_for(graph, scale):
    return profile_graph(
        graph,
        num_sms=DEFAULT_SYSTEM.num_sms,
        l1_bytes=DEFAULT_SYSTEM.l1_bytes // scale,
        l2_bytes=DEFAULT_SYSTEM.l2_bytes // scale,
        tb_size=DEFAULT_SYSTEM.tb_size,
    )


def _cmd_datasets(_args) -> int:
    rows = []
    for key, dataset in PAPER_DATASETS.items():
        ref = dataset.paper
        rows.append({
            "Key": key,
            "Description": dataset.description,
            "Paper |V|": ref.vertices,
            "Paper |E|": ref.edges,
            "Classes (vol/reuse/imb)":
                f"{ref.volume_class}/{ref.reuse_class}/{ref.imbalance_class}",
            "Sim scale": DEFAULT_SIM_SCALE[key],
        })
    print(render_table(rows, title="Datasets (synthetic stand-ins)"))
    return 0


def _cmd_profile(args) -> int:
    graph, scale = _resolve_graph(args.graph)
    profile = _profile_for(graph, scale)
    print(render_table([profile.as_row()], title=f"Profile of {graph.name}"))
    return 0


def _cmd_predict(args) -> int:
    graph, scale = _resolve_graph(args.graph)
    app = args.app.upper()
    if app not in APP_PROPERTIES:
        print(f"unknown app {app!r}; choose from {sorted(APP_PROPERTIES)}",
              file=sys.stderr)
        return 2
    workload = profile_workload(_profile_for(graph, scale), app)
    for line in explain_prediction(workload):
        print(line)
    print(f"\nrecommended configuration: "
          f"{predict_configuration(workload).code}")
    return 0


def _start_obs(args):
    """Enable the observability layer when ``--events``/``--metrics`` ask.

    Returns the enabled :class:`~repro.obs.Observer`, or None when the
    flags leave observation off (the no-op fast path).
    """
    if not (getattr(args, "events", None) or getattr(args, "metrics",
                                                     False)):
        return None
    from . import obs

    return obs.enable(events=args.events)


def _finish_obs(args, observer) -> None:
    """Flush sinks and print the ``--metrics`` summary tables."""
    if observer is None:
        return
    from . import obs

    snapshot = observer.metrics.snapshot()
    obs.disable()
    if getattr(args, "events", None):
        print(f"\nevent log written to {args.events}")
    if not getattr(args, "metrics", False):
        return
    rows = [{"Counter": name, "Value": value}
            for name, value in snapshot["counters"].items()]
    rows.extend({"Counter": name, "Value": value}
                for name, value in snapshot["gauges"].items())
    if rows:
        print()
        print(render_table(rows, title="Metrics: counters"))
    hist_rows = [{
        "Histogram": name,
        "Count": summary["count"],
        "Mean": f"{summary['mean']:.4g}",
        "Min": f"{summary['min']:.4g}",
        "Max": f"{summary['max']:.4g}",
    } for name, summary in snapshot["histograms"].items()]
    if hist_rows:
        print()
        print(render_table(hist_rows, title="Metrics: histograms"))
    for name, payload in snapshot.get("sources", {}).items():
        print(f"\nsource {name!r}: {payload}")


def _start_profile(args) -> bool:
    """Enable the perf collector when ``--profile`` was passed.

    Profiling measures this process's trace-gen/simulate wall clock, so
    it forces uncached in-process execution (a cache hit or a worker
    process would leave nothing to measure here).
    """
    if not getattr(args, "profile", False):
        return False
    from .perf import collector

    collector.reset()
    collector.enabled = True
    return True


def _finish_profile() -> None:
    from .perf import collector, format_breakdown

    collector.enabled = False
    for line in format_breakdown(collector.snapshot()):
        print(line)


def _apply_engine(args) -> None:
    """Install ``--engine`` as the process default.

    The env var (not just the in-process default) carries the choice
    into process-pool and multinode workers, which re-resolve it on
    import.
    """
    if getattr(args, "engine", None):
        import os

        set_default_engine(args.engine)
        os.environ["REPRO_SIM_ENGINE"] = args.engine


def _cmd_run(args) -> int:
    _apply_engine(args)
    ref = _resolve_ref(args.graph)
    configs = None
    if args.configs:
        configs = [parse_config(code) for code in args.configs.split(",")]
    spec = WorkloadSpec.for_workload(
        args.app.upper(), ref,
        configs=configs,
        system=scaled_system(ref.scale),
        max_iters=args.iters,
    )
    profiling = _start_profile(args)
    observer = _start_obs(args)
    try:
        result = run_plan(
            [spec],
            cache=None if profiling else _resolve_cache(args),
            **_fault_kwargs(args))[0]
    except UnitExecutionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        _finish_obs(args, observer)
        return 1
    if isinstance(result, UnitFailure):
        _print_failure(result)
        _finish_obs(args, observer)
        return 1
    print(f"{spec.app} on {result.graph_name}: normalized execution time")
    for code, value in result.normalized().items():
        print(render_breakdown_bars(
            code, result.results[code].breakdown, value))
    print(f"best: {result.best_code}")
    _finish_obs(args, observer)
    if profiling:
        _finish_profile()
    return 0


def _split_choices(raw: str | None, universe: tuple[str, ...],
                   what: str) -> tuple[str, ...] | None:
    """Parse a comma-separated ``--graphs``/``--apps`` restriction."""
    if raw is None:
        return None
    chosen = tuple(item.strip().upper() for item in raw.split(",")
                   if item.strip())
    unknown = [item for item in chosen if item not in universe]
    if unknown:
        raise SystemExit(
            f"unknown {what} {', '.join(unknown)}; "
            f"choose from {', '.join(universe)}")
    return chosen


def _gap_cell(row) -> str:
    """The sweep table's Exact column; NaN gaps read as unmeasurable."""
    if row.prediction_exact:
        return "yes"
    gap = row.prediction_gap
    if math.isnan(gap):
        return "no (not simulated)"
    return f"no ({gap:.2f}x)"


def _report_resume(args, graphs, apps) -> None:
    """Wire ``--resume MANIFEST`` and report what the sweep still owes.

    Resuming is manifest + cache + plan subset: the manifest names what
    completed, the cache restores those results without simulation, and
    :meth:`ExecutionPlan.remaining` is the authoritative list of units
    left to run — printed here so an operator sees the resume actually
    engaging before the first (slow) unit starts.
    """
    from .runtime import ExecutionPlan, RunManifest

    if args.no_cache:
        raise SystemExit("--resume restores completed units from the "
                         "result cache; drop --no-cache")
    args.manifest = args.resume
    manifest = RunManifest(args.resume)
    plan = ExecutionPlan.for_sweep(graphs, apps, max_iters=args.iters)
    remaining = plan.remaining(manifest)
    print(f"resuming from {args.resume}: {len(plan) - len(remaining)} of "
          f"{len(plan)} unit(s) already complete, {len(remaining)} to go"
          + (f" ({manifest.torn_lines} torn manifest line(s) skipped)"
             if manifest.torn_lines else ""))


def _cmd_sweep(args) -> int:
    from .harness import APPS, GRAPHS, flexibility_stats, format_pct, \
        run_sweep

    _apply_engine(args)

    graphs = _split_choices(args.graphs, GRAPHS, "graph") or GRAPHS
    apps = _split_choices(args.apps, APPS, "app") or APPS
    if args.resume:
        _report_resume(args, graphs, apps)
    profiling = _start_profile(args)
    observer = _start_obs(args)
    try:
        sweep = run_sweep(
            graphs=graphs,
            apps=apps,
            max_iters=args.iters,
            jobs=1 if profiling else args.jobs,
            cache=None if profiling else _resolve_cache(args),
            progress=lambda label: print(f"  {label}", flush=True),
            backend="auto" if profiling else args.backend,
            nodes=args.nodes,
            queue_dir=args.queue_dir,
            lease_ttl=args.lease_ttl,
            **_fault_kwargs(args),
        )
    except UnitExecutionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        _finish_obs(args, observer)
        return 1
    rows = [{
        "Workload": f"{r.app}-{r.graph}",
        "Best": r.best,
        "Predicted": r.predicted,
        "Exact": _gap_cell(r),
    } for r in sweep.rows]
    print(render_table(rows, title="Sweep summary"))
    stats = flexibility_stats(sweep)
    print(f"\nmodel exact: {sweep.exact_predictions}/{len(sweep.rows)}; "
          f"default loses on {stats.default_losses} workloads "
          f"(avg reduction {format_pct(stats.avg_reduction)})")
    _finish_obs(args, observer)
    if sweep.failures:
        print(f"\n{len(sweep.failures)} workload(s) failed:",
              file=sys.stderr)
        for failure in sweep.failures:
            _print_failure(failure)
        if profiling:
            _finish_profile()
        return 1
    if profiling:
        _finish_profile()
    return 0


def _cmd_worker(args) -> int:
    import os

    from .runtime.worker import worker_config, worker_main

    node = args.node or f"worker-{os.getpid()}"
    config = worker_config(
        args.queue_dir, node,
        lease_ttl=args.lease_ttl,
        policy=_resolve_policy(args),
        poll=args.poll,
        events=args.events,
    )
    processed = worker_main(config)
    print(f"{node}: processed {processed} unit(s); queue drained")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list dataset stand-ins")

    p_profile = sub.add_parser("profile", help="Table II profile of a graph")
    p_profile.add_argument("graph")

    p_predict = sub.add_parser("predict", help="model recommendation")
    p_predict.add_argument("graph")
    p_predict.add_argument("app")

    cache_flags = argparse.ArgumentParser(add_help=False)
    cache_flags.add_argument("--cache-dir", default=None,
                             help="result-cache directory (default "
                                  "$REPRO_CACHE_DIR or ~/.cache/repro)")
    cache_flags.add_argument("--no-cache", action="store_true",
                             help="simulate everything; skip the result "
                                  "cache")

    fault_flags = argparse.ArgumentParser(add_help=False)
    mode = fault_flags.add_mutually_exclusive_group()
    mode.add_argument("--keep-going", dest="keep_going",
                      action="store_true", default=True,
                      help="finish the batch even if workloads fail; "
                           "report failures separately (default)")
    mode.add_argument("--fail-fast", dest="keep_going",
                      action="store_false",
                      help="abort on the first workload that exhausts "
                           "its retries")
    fault_flags.add_argument("--retries", type=int, default=None,
                             metavar="N",
                             help="attempts per workload (default 3)")
    fault_flags.add_argument("--timeout", type=float, default=None,
                             metavar="SECONDS",
                             help="per-workload wall-clock limit "
                                  "(default: none)")
    fault_flags.add_argument("--manifest", default=None, metavar="PATH",
                             help="append per-workload outcomes to this "
                                  "JSON-lines journal (resume aid)")

    perf_flags = argparse.ArgumentParser(add_help=False)
    perf_flags.add_argument("--profile", action="store_true",
                            help="print a trace-gen vs. simulate wall-"
                                 "clock breakdown afterwards (forces "
                                 "uncached in-process execution)")
    perf_flags.add_argument("--engine", choices=list(ENGINES), default=None,
                            help="simulator core: 'scalar' (reference "
                                 "oracle) or 'batched' (lockstep columnar "
                                 "dispatch; bit-identical results). "
                                 "Default: $REPRO_SIM_ENGINE or scalar")

    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_flags.add_argument("--events", default=None, metavar="PATH",
                           help="stream runtime events (unit lifecycle, "
                                "retries, crashes, pool recycles, cache "
                                "traffic) to this JSON-lines log; render "
                                "with tools/events_to_chrometrace.py")
    obs_flags.add_argument("--metrics", action="store_true",
                           help="print a metrics summary (counters + "
                                "histograms) after the run")

    p_run = sub.add_parser("run",
                           parents=[cache_flags, fault_flags, perf_flags,
                                    obs_flags],
                           help="simulate one workload")
    p_run.add_argument("graph")
    p_run.add_argument("app")
    p_run.add_argument("--configs", help="comma-separated codes (e.g. "
                                         "TG0,SGR,SDR)")
    p_run.add_argument("--iters", type=int, default=None,
                       help="cap simulated iterations")

    p_sweep = sub.add_parser("sweep",
                             parents=[cache_flags, fault_flags, perf_flags,
                                      obs_flags],
                             help="full 36-workload sweep (slow)")
    p_sweep.add_argument("--iters", type=int, default=None)
    p_sweep.add_argument("--jobs", type=int, default=1,
                         help="worker processes for the sweep "
                              "(1 = in-process serial execution; "
                              "--profile forces 1)")
    p_sweep.add_argument("--graphs", default=None, metavar="KEYS",
                         help="comma-separated dataset keys to sweep "
                              "(default: all six)")
    p_sweep.add_argument("--apps", default=None, metavar="APPS",
                         help="comma-separated applications to sweep "
                              "(default: every registered kernel)")
    p_sweep.add_argument("--backend", default="auto",
                         choices=list(BACKENDS),
                         help="execution backend (default auto: serial "
                              "when --jobs 1, else a process pool; "
                              "multinode runs a coordinated worker fleet "
                              "over a filesystem work queue)")
    p_sweep.add_argument("--nodes", type=int, default=2, metavar="N",
                         help="worker nodes for --backend multinode "
                              "(default 2)")
    p_sweep.add_argument("--queue-dir", default=None, metavar="DIR",
                         help="work-queue directory for multinode sweeps "
                              "(default: private temp dir; name one so "
                              "'repro worker' nodes can join and "
                              "interrupted queues survive)")
    p_sweep.add_argument("--lease-ttl", type=float, default=None,
                         metavar="SECONDS",
                         help="multinode lease time-to-live before a "
                              "stalled node's unit is stolen "
                              f"(default {DEFAULT_LEASE_TTL:g})")
    p_sweep.add_argument("--resume", default=None, metavar="MANIFEST",
                         help="resume an interrupted sweep from its "
                              "manifest journal: completed units restore "
                              "from the result cache, the rest re-run, "
                              "and the journal keeps growing in place")

    p_worker = sub.add_parser(
        "worker",
        help="join a multinode sweep as one worker node")
    p_worker.add_argument("queue_dir",
                          help="the sweep's work-queue directory "
                               "(the coordinator's --queue-dir)")
    p_worker.add_argument("--node", default=None, metavar="NAME",
                          help="node name for leases/manifests/events "
                               "(default worker-<pid>)")
    p_worker.add_argument("--lease-ttl", type=float,
                          default=DEFAULT_LEASE_TTL, metavar="SECONDS",
                          help="lease time-to-live this node claims with "
                               f"(default {DEFAULT_LEASE_TTL:g})")
    p_worker.add_argument("--poll", type=float, default=0.05,
                          metavar="SECONDS",
                          help="idle sleep between claim scans "
                               "(default 0.05)")
    p_worker.add_argument("--retries", type=int, default=None, metavar="N",
                          help="attempts per workload (default 3)")
    p_worker.add_argument("--timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="per-workload wall-clock limit "
                               "(default: none)")
    p_worker.add_argument("--events", action="store_true",
                          help="journal this node's runtime events to "
                               "events/<node>.jsonl inside the queue")
    return parser


_COMMANDS = {
    "datasets": _cmd_datasets,
    "profile": _cmd_profile,
    "predict": _cmd_predict,
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "worker": _cmd_worker,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
