"""Command-line interface: ``python -m repro <command>``.

Commands
--------
datasets              list the six dataset stand-ins and their classes
profile GRAPH         Table II profile of one dataset (or a .mtx file)
predict GRAPH APP     model prediction + decision-tree walkthrough
run GRAPH APP         simulate the Figure 5 configurations for a workload
sweep                 the full sweep: six graphs x the registered
                      applications (slow)
worker QUEUE_DIR      join a multi-node sweep as one worker node
serve                 run the sweep-as-a-service daemon (HTTP over TCP
                      and/or a Unix socket)
submit GRAPH APP      run one workload through a serve daemon

``GRAPH`` is one of AMZ DCT EML OLS RAJ WNG (built at its simulation
scale) or a path to a Matrix Market file (profiled against the full-size
Table IV machine).

``run`` and ``sweep`` execute through the ``repro.runtime`` layer:
results are memoized per workload in a content-addressed cache
(``--cache-dir DIR``, ``--no-cache``), and ``sweep --jobs N`` fans
workloads across N worker processes.  ``sweep --graphs``/``--apps``
restrict the sweep to a subset of the graph x application matrix (the
paper's six apps plus the frontier-IR additions BFS, KC, TC, LP).
``sweep --prune-k K [--explore N]`` prunes each workload to the
model's top-K configurations (plus the normalization baseline and N
deterministic exploration picks) instead of the full Figure 5 grid —
see ``repro.model.pruning``.

Observability (``repro.obs``) is off by default and never changes
modeled numbers: ``--events PATH`` streams typed runtime events (unit
lifecycle, retries, crashes, pool recycles, cache traffic) to a
JSON-lines log that ``tools/events_to_chrometrace.py`` renders as a
Chrome trace; ``--metrics`` prints an end-of-run metrics summary
(counters + histograms, including the ``--profile`` collector when both
are on).

Execution is fault tolerant: failing workloads are retried
(``--retries``), optionally bounded by a per-workload wall-clock
``--timeout``.  Under ``--keep-going`` (the default) a sweep completes
with the failed workloads reported separately (exit status 1);
``--fail-fast`` aborts on the first workload that exhausts its retries.
``--manifest PATH`` journals every outcome to a JSON-lines file as it
happens, so an interrupted sweep resumes from cache + manifest —
``sweep --resume MANIFEST`` wires that up in one flag and reports how
much of the sweep is already banked before re-running the rest.

``sweep --backend multinode`` runs the sweep across ``--nodes N``
supervised worker processes coordinated through a crash-safe filesystem
work queue (``--queue-dir DIR`` to place it somewhere shared and
inspectable).  Additional nodes — on this machine or any machine
mounting the same filesystem — join with ``repro worker QUEUE_DIR``;
a node killed mid-unit costs one lease reclaim, never the sweep.

``repro serve`` keeps the runtime resident: requests are deduplicated by
spec digest, warm digests answer straight from the result cache, cold
ones batch into plans under admission control (see DESIGN.md §14).
``repro submit`` and ``repro sweep --server URL`` are clients of that
daemon; ``sweep --server`` falls back to local execution when the
daemon is unreachable.
"""

from __future__ import annotations

import argparse
import math
import sys

from .configs import parse_config
from .graph import DEFAULT_SIM_SCALE, PAPER_DATASETS, load_dataset, load_mtx
from .graph.builders import normalize
from .graph.generators import attach_random_weights
from .harness import render_breakdown_bars, render_table
from .model import explain_prediction, predict_configuration
from .runtime import (
    BACKENDS,
    DEFAULT_LEASE_TTL,
    GraphRef,
    ResultCache,
    RetryPolicy,
    UnitExecutionError,
    UnitFailure,
    WorkloadSpec,
    run_plan,
)
from .sim.config import DEFAULT_SYSTEM, ENGINES, scaled_system, \
    set_default_engine
from .taxonomy import APP_PROPERTIES, profile_graph, profile_workload

__all__ = ["main"]


def _resolve_graph(name: str):
    """Return (graph, scale) for a dataset key or a .mtx path."""
    if name.upper() in PAPER_DATASETS:
        key = name.upper()
        scale = DEFAULT_SIM_SCALE[key]
        return load_dataset(key, scale=scale), scale
    graph = attach_random_weights(normalize(load_mtx(name)))
    return graph, 1


def _resolve_ref(name: str) -> GraphRef:
    """A runtime graph reference for a dataset key or a .mtx path."""
    if name.upper() in PAPER_DATASETS:
        return GraphRef.dataset(name.upper())
    return GraphRef.mtx(name)


def _resolve_cache(args) -> ResultCache | None:
    """The result cache the flags select (None under ``--no-cache``)."""
    if args.no_cache:
        return None
    return ResultCache(args.cache_dir)


def _resolve_policy(args) -> RetryPolicy | None:
    """A retry policy when the flags override the defaults, else None."""
    if args.retries is None and args.timeout is None:
        return None
    defaults = RetryPolicy()
    return RetryPolicy(
        max_attempts=args.retries if args.retries is not None
        else defaults.max_attempts,
        timeout=args.timeout,
    )


def _fault_kwargs(args) -> dict:
    """run_plan/run_sweep keywords selected by the fault-tolerance flags."""
    return {
        "policy": _resolve_policy(args),
        "keep_going": args.keep_going,
        "manifest": args.manifest,
    }


def _print_failure(failure: UnitFailure) -> None:
    print(f"failed: {failure.label}: [{failure.kind}] {failure.exception} "
          f"after {failure.attempts} attempt(s): {failure.message}",
          file=sys.stderr)


def _profile_for(graph, scale):
    return profile_graph(
        graph,
        num_sms=DEFAULT_SYSTEM.num_sms,
        l1_bytes=DEFAULT_SYSTEM.l1_bytes // scale,
        l2_bytes=DEFAULT_SYSTEM.l2_bytes // scale,
        tb_size=DEFAULT_SYSTEM.tb_size,
    )


def _cmd_datasets(_args) -> int:
    rows = []
    for key, dataset in PAPER_DATASETS.items():
        ref = dataset.paper
        rows.append({
            "Key": key,
            "Description": dataset.description,
            "Paper |V|": ref.vertices,
            "Paper |E|": ref.edges,
            "Classes (vol/reuse/imb)":
                f"{ref.volume_class}/{ref.reuse_class}/{ref.imbalance_class}",
            "Sim scale": DEFAULT_SIM_SCALE[key],
        })
    print(render_table(rows, title="Datasets (synthetic stand-ins)"))
    return 0


def _cmd_profile(args) -> int:
    graph, scale = _resolve_graph(args.graph)
    profile = _profile_for(graph, scale)
    print(render_table([profile.as_row()], title=f"Profile of {graph.name}"))
    return 0


def _cmd_predict(args) -> int:
    graph, scale = _resolve_graph(args.graph)
    app = args.app.upper()
    if app not in APP_PROPERTIES:
        print(f"unknown app {app!r}; choose from {sorted(APP_PROPERTIES)}",
              file=sys.stderr)
        return 2
    workload = profile_workload(_profile_for(graph, scale), app)
    for line in explain_prediction(workload):
        print(line)
    print(f"\nrecommended configuration: "
          f"{predict_configuration(workload).code}")
    return 0


def _start_obs(args):
    """Enable the observability layer when ``--events``/``--metrics`` ask.

    Returns the enabled :class:`~repro.obs.Observer`, or None when the
    flags leave observation off (the no-op fast path).
    """
    if not (getattr(args, "events", None) or getattr(args, "metrics",
                                                     False)):
        return None
    from . import obs

    return obs.enable(events=args.events)


def _finish_obs(args, observer) -> None:
    """Flush sinks and print the ``--metrics`` summary tables."""
    if observer is None:
        return
    from . import obs

    snapshot = observer.metrics.snapshot()
    obs.disable()
    if getattr(args, "events", None):
        print(f"\nevent log written to {args.events}")
    if not getattr(args, "metrics", False):
        return
    rows = [{"Counter": name, "Value": value}
            for name, value in snapshot["counters"].items()]
    rows.extend({"Counter": name, "Value": value}
                for name, value in snapshot["gauges"].items())
    if rows:
        print()
        print(render_table(rows, title="Metrics: counters"))
    hist_rows = [{
        "Histogram": name,
        "Count": summary["count"],
        "Mean": f"{summary['mean']:.4g}",
        "Min": f"{summary['min']:.4g}",
        "Max": f"{summary['max']:.4g}",
    } for name, summary in snapshot["histograms"].items()]
    if hist_rows:
        print()
        print(render_table(hist_rows, title="Metrics: histograms"))
    for name, payload in snapshot.get("sources", {}).items():
        print(f"\nsource {name!r}: {payload}")


def _start_profile(args) -> bool:
    """Enable the perf collector when ``--profile`` was passed.

    Profiling measures this process's trace-gen/simulate wall clock, so
    it forces uncached in-process execution (a cache hit or a worker
    process would leave nothing to measure here).
    """
    if not getattr(args, "profile", False):
        return False
    from .perf import collector

    collector.reset()
    collector.enabled = True
    return True


def _finish_profile() -> None:
    from .perf import collector, format_breakdown

    collector.enabled = False
    for line in format_breakdown(collector.snapshot()):
        print(line)


def _apply_engine(args) -> None:
    """Install ``--engine`` as the process default.

    The env var (not just the in-process default) carries the choice
    into process-pool and multinode workers, which re-resolve it on
    import.
    """
    if getattr(args, "engine", None):
        import os

        set_default_engine(args.engine)
        os.environ["REPRO_SIM_ENGINE"] = args.engine


def _cmd_run(args) -> int:
    _apply_engine(args)
    spec = _build_spec(args)
    profiling = _start_profile(args)
    observer = _start_obs(args)
    try:
        result = run_plan(
            [spec],
            cache=None if profiling else _resolve_cache(args),
            **_fault_kwargs(args))[0]
    except UnitExecutionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        _finish_obs(args, observer)
        return 1
    if isinstance(result, UnitFailure):
        _print_failure(result)
        _finish_obs(args, observer)
        return 1
    _print_workload(spec, result)
    _finish_obs(args, observer)
    if profiling:
        _finish_profile()
    return 0


def _split_choices(raw: str | None, universe: tuple[str, ...],
                   what: str) -> tuple[str, ...] | None:
    """Parse a comma-separated ``--graphs``/``--apps`` restriction."""
    if raw is None:
        return None
    chosen = tuple(item.strip().upper() for item in raw.split(",")
                   if item.strip())
    unknown = [item for item in chosen if item not in universe]
    if unknown:
        raise SystemExit(
            f"unknown {what} {', '.join(unknown)}; "
            f"choose from {', '.join(universe)}")
    return chosen


def _gap_cell(row) -> str:
    """The sweep table's Exact column; NaN gaps read as unmeasurable."""
    if row.prediction_exact:
        # A pruned row can match the best *simulated* config while the
        # true optimum was never run; label it rather than claim a hit.
        return "yes" if row.oracle_known else "yes (of simulated)"
    gap = row.prediction_gap
    if math.isnan(gap):
        return "no (not simulated)"
    return f"no ({gap:.2f}x)"


def _resolve_prune(args):
    """The pruning policy ``--prune-k``/``--explore`` select (else None)."""
    if getattr(args, "prune_k", None) is None:
        if getattr(args, "explore", 0):
            raise SystemExit("--explore only applies with --prune-k")
        return None
    from .model.pruning import PruningPolicy

    return PruningPolicy(k=args.prune_k, explore=args.explore)


def _build_sweep_plan(args, graphs, apps):
    """The sweep's execution plan, honoring any ``--prune-k`` restriction.

    The resume and server paths must construct plans exactly as the
    local ``run_sweep`` path does — same subsets, same digests — or
    manifest resume and serve dedup would miss every pruned unit.
    """
    from .harness.sweep import plan_sweep

    plan, _ = plan_sweep(graphs, apps, max_iters=args.iters,
                         prune=_resolve_prune(args))
    return plan


def _report_resume(args, graphs, apps) -> None:
    """Wire ``--resume MANIFEST`` and report what the sweep still owes.

    Resuming is manifest + cache + plan subset: the manifest names what
    completed, the cache restores those results without simulation, and
    :meth:`ExecutionPlan.remaining` is the authoritative list of units
    left to run — printed here so an operator sees the resume actually
    engaging before the first (slow) unit starts.
    """
    from .runtime import RunManifest

    if args.no_cache:
        raise SystemExit("--resume restores completed units from the "
                         "result cache; drop --no-cache")
    args.manifest = args.resume
    manifest = RunManifest(args.resume)
    plan = _build_sweep_plan(args, graphs, apps)
    remaining = plan.remaining(manifest)
    print(f"resuming from {args.resume}: {len(plan) - len(remaining)} of "
          f"{len(plan)} unit(s) already complete, {len(remaining)} to go"
          + (f" ({manifest.torn_lines} torn manifest line(s) skipped)"
             if manifest.torn_lines else ""))


def _print_sweep(sweep) -> int:
    """Render a completed sweep (local or served); 1 if units failed."""
    from .harness import flexibility_stats, format_pct

    rows = [{
        "Workload": f"{r.app}-{r.graph}",
        "Best": r.best,
        "Predicted": r.predicted,
        "Exact": _gap_cell(r),
    } for r in sweep.rows]
    print(render_table(rows, title="Sweep summary"))
    stats = flexibility_stats(sweep)
    unknown = sweep.oracle_unknown_rows
    suffix = (f" ({unknown} pruned row(s) lack the full grid; "
              f"best-of-simulated matches: {sweep.exact_of_simulated})"
              if unknown else "")
    print(f"\nmodel exact: {sweep.exact_predictions}/{len(sweep.rows)}; "
          f"default loses on {stats.default_losses} workloads "
          f"(avg reduction {format_pct(stats.avg_reduction)})"
          + suffix)
    if sweep.failures:
        print(f"\n{len(sweep.failures)} workload(s) failed:",
              file=sys.stderr)
        for failure in sweep.failures:
            _print_failure(failure)
        return 1
    return 0


def _sweep_via_server(args, graphs, apps):
    """Run the sweep through a serve daemon.

    Returns the :class:`~repro.harness.sweep.SweepResult`, or None when
    no daemon answers at ``--server`` (the caller falls back to local
    execution).  Simulation happens server-side; only the cheap
    aggregation (profiles + model predictions) runs here.
    """
    from .harness.runner import WorkloadResult
    from .harness.sweep import aggregate_sweep
    from .serve import ServeClient, ServeUnavailable

    plan = _build_sweep_plan(args, graphs, apps)
    try:
        with ServeClient(args.server, client_id="cli-sweep") as client:
            client.health()
            print(f"submitting {len(plan)} unit(s) to {args.server}",
                  flush=True)
            envelopes = client.submit_many(list(plan))
    except ServeUnavailable as exc:
        print(f"warning: {exc}; running the sweep locally",
              file=sys.stderr)
        return None
    workloads = []
    for spec, envelope in zip(plan, envelopes):
        status = envelope.get("status")
        if status == "ok":
            workloads.append(WorkloadResult.from_dict(envelope["result"]))
        elif status == "failed":
            workloads.append(UnitFailure.from_dict(envelope["failure"]))
        else:  # still rejected after the client's retry budget
            workloads.append(UnitFailure(
                digest=envelope.get("digest", spec.digest()),
                label=spec.label, kind="rejected", attempts=0,
                exception="ServeRejected",
                message=f"admission control ({envelope.get('reason')})"))
        print(f"  {spec.label} ({envelope.get('source', status)})",
              flush=True)
    return aggregate_sweep(plan, workloads, graphs, apps)


def _cmd_sweep(args) -> int:
    from .harness import APPS, GRAPHS, run_sweep

    _apply_engine(args)

    graphs = _split_choices(args.graphs, GRAPHS, "graph") or GRAPHS
    apps = _split_choices(args.apps, APPS, "app") or APPS
    _resolve_prune(args)  # validates --prune-k/--explore up front
    if args.server:
        sweep = _sweep_via_server(args, graphs, apps)
        if sweep is not None:
            return _print_sweep(sweep)
        # unreachable daemon: fall through to the local path
    if args.resume:
        _report_resume(args, graphs, apps)
    profiling = _start_profile(args)
    observer = _start_obs(args)
    try:
        sweep = run_sweep(
            graphs=graphs,
            apps=apps,
            max_iters=args.iters,
            prune_k=args.prune_k,
            explore=args.explore,
            jobs=1 if profiling else args.jobs,
            cache=None if profiling else _resolve_cache(args),
            progress=lambda label: print(f"  {label}", flush=True),
            backend="auto" if profiling else args.backend,
            nodes=args.nodes,
            queue_dir=args.queue_dir,
            lease_ttl=args.lease_ttl,
            **_fault_kwargs(args),
        )
    except UnitExecutionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        _finish_obs(args, observer)
        return 1
    status = _print_sweep(sweep)
    _finish_obs(args, observer)
    if profiling:
        _finish_profile()
    return status


def _build_spec(args) -> WorkloadSpec:
    """The workload spec ``run``/``submit`` share (same flags, same key)."""
    ref = _resolve_ref(args.graph)
    configs = None
    if args.configs:
        configs = [parse_config(code) for code in args.configs.split(",")]
    return WorkloadSpec.for_workload(
        args.app.upper(), ref,
        configs=configs,
        system=scaled_system(ref.scale),
        max_iters=args.iters,
    )


def _print_workload(spec: WorkloadSpec, result, source: str | None = None) \
        -> None:
    suffix = f" (served: {source})" if source else ""
    print(f"{spec.app} on {result.graph_name}: normalized execution time"
          f"{suffix}")
    for code, value in result.normalized().items():
        print(render_breakdown_bars(
            code, result.results[code].breakdown, value))
    print(f"best: {result.best_code}")


def _cmd_serve(args) -> int:
    from .serve import ServeConfig, run_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        uds=args.uds,
        cache_dir=args.cache_dir,
        cache_layout=args.cache_layout,
        backend=args.backend,
        jobs=args.jobs,
        batch_window=args.batch_window,
        max_batch=args.max_batch,
        max_inflight_units=args.max_inflight,
        client_rate=args.client_rate,
        client_burst=args.client_burst,
        manifest=args.manifest,
        policy=_resolve_policy(args),
    )
    observer = _start_obs(args)
    try:
        run_server(config)
    finally:
        _finish_obs(args, observer)
    return 0


def _cmd_submit(args) -> int:
    from .harness.runner import WorkloadResult
    from .serve import ServeClient, ServeError, ServeRejected, \
        ServeUnavailable

    spec = _build_spec(args)
    try:
        with ServeClient(args.server, client_id=args.client) as client:
            envelope = client.submit(spec, max_wait=args.max_wait)
    except ServeRejected as exc:
        print(f"rejected: {exc}", file=sys.stderr)
        return 1
    except (ServeUnavailable, ServeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if envelope.get("status") == "failed":
        _print_failure(UnitFailure.from_dict(envelope["failure"]))
        return 1
    result = WorkloadResult.from_dict(envelope["result"])
    _print_workload(spec, result, source=envelope.get("source"))
    return 0


def _cmd_worker(args) -> int:
    import os

    from .runtime.worker import worker_config, worker_main

    node = args.node or f"worker-{os.getpid()}"
    config = worker_config(
        args.queue_dir, node,
        lease_ttl=args.lease_ttl,
        policy=_resolve_policy(args),
        poll=args.poll,
        events=args.events,
    )
    processed = worker_main(config)
    print(f"{node}: processed {processed} unit(s); queue drained")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list dataset stand-ins")

    p_profile = sub.add_parser("profile", help="Table II profile of a graph")
    p_profile.add_argument("graph")

    p_predict = sub.add_parser("predict", help="model recommendation")
    p_predict.add_argument("graph")
    p_predict.add_argument("app")

    cache_flags = argparse.ArgumentParser(add_help=False)
    cache_flags.add_argument("--cache-dir", default=None,
                             help="result-cache directory (default "
                                  "$REPRO_CACHE_DIR or ~/.cache/repro)")
    cache_flags.add_argument("--no-cache", action="store_true",
                             help="simulate everything; skip the result "
                                  "cache")

    fault_flags = argparse.ArgumentParser(add_help=False)
    mode = fault_flags.add_mutually_exclusive_group()
    mode.add_argument("--keep-going", dest="keep_going",
                      action="store_true", default=True,
                      help="finish the batch even if workloads fail; "
                           "report failures separately (default)")
    mode.add_argument("--fail-fast", dest="keep_going",
                      action="store_false",
                      help="abort on the first workload that exhausts "
                           "its retries")
    fault_flags.add_argument("--retries", type=int, default=None,
                             metavar="N",
                             help="attempts per workload (default 3)")
    fault_flags.add_argument("--timeout", type=float, default=None,
                             metavar="SECONDS",
                             help="per-workload wall-clock limit "
                                  "(default: none)")
    fault_flags.add_argument("--manifest", default=None, metavar="PATH",
                             help="append per-workload outcomes to this "
                                  "JSON-lines journal (resume aid)")

    perf_flags = argparse.ArgumentParser(add_help=False)
    perf_flags.add_argument("--profile", action="store_true",
                            help="print a trace-gen vs. simulate wall-"
                                 "clock breakdown afterwards (forces "
                                 "uncached in-process execution)")
    perf_flags.add_argument("--engine", choices=list(ENGINES), default=None,
                            help="simulator core: 'scalar' (reference "
                                 "oracle) or 'batched' (lockstep columnar "
                                 "dispatch; bit-identical results). "
                                 "Default: $REPRO_SIM_ENGINE or scalar")

    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_flags.add_argument("--events", default=None, metavar="PATH",
                           help="stream runtime events (unit lifecycle, "
                                "retries, crashes, pool recycles, cache "
                                "traffic) to this JSON-lines log; render "
                                "with tools/events_to_chrometrace.py")
    obs_flags.add_argument("--metrics", action="store_true",
                           help="print a metrics summary (counters + "
                                "histograms) after the run")

    p_run = sub.add_parser("run",
                           parents=[cache_flags, fault_flags, perf_flags,
                                    obs_flags],
                           help="simulate one workload")
    p_run.add_argument("graph")
    p_run.add_argument("app")
    p_run.add_argument("--configs", help="comma-separated codes (e.g. "
                                         "TG0,SGR,SDR)")
    p_run.add_argument("--iters", type=int, default=None,
                       help="cap simulated iterations")

    p_sweep = sub.add_parser("sweep",
                             parents=[cache_flags, fault_flags, perf_flags,
                                      obs_flags],
                             help="full 36-workload sweep (slow)")
    p_sweep.add_argument("--iters", type=int, default=None)
    p_sweep.add_argument("--jobs", type=int, default=1,
                         help="worker processes for the sweep "
                              "(1 = in-process serial execution; "
                              "--profile forces 1)")
    p_sweep.add_argument("--graphs", default=None, metavar="KEYS",
                         help="comma-separated dataset keys to sweep "
                              "(default: all six)")
    p_sweep.add_argument("--apps", default=None, metavar="APPS",
                         help="comma-separated applications to sweep "
                              "(default: every registered kernel)")
    p_sweep.add_argument("--backend", default="auto",
                         choices=list(BACKENDS),
                         help="execution backend (default auto: serial "
                              "when --jobs 1, else a process pool; "
                              "multinode runs a coordinated worker fleet "
                              "over a filesystem work queue)")
    p_sweep.add_argument("--nodes", type=int, default=2, metavar="N",
                         help="worker nodes for --backend multinode "
                              "(default 2)")
    p_sweep.add_argument("--queue-dir", default=None, metavar="DIR",
                         help="work-queue directory for multinode sweeps "
                              "(default: private temp dir; name one so "
                              "'repro worker' nodes can join and "
                              "interrupted queues survive)")
    p_sweep.add_argument("--lease-ttl", type=float, default=None,
                         metavar="SECONDS",
                         help="multinode lease time-to-live before a "
                              "stalled node's unit is stolen "
                              f"(default {DEFAULT_LEASE_TTL:g})")
    p_sweep.add_argument("--prune-k", type=int, default=None, metavar="K",
                         help="prediction-guided pruning: simulate only "
                              "the model's top-K configurations per "
                              "workload (plus the baseline) instead of "
                              "the full Figure 5 grid")
    p_sweep.add_argument("--explore", type=int, default=0, metavar="N",
                         help="with --prune-k, also simulate N "
                              "deterministically sampled configurations "
                              "outside the top-K (active-learning "
                              "exploration budget; default 0)")
    p_sweep.add_argument("--resume", default=None, metavar="MANIFEST",
                         help="resume an interrupted sweep from its "
                              "manifest journal: completed units restore "
                              "from the result cache, the rest re-run, "
                              "and the journal keeps growing in place")
    p_sweep.add_argument("--server", default=None, metavar="URL",
                         help="run the sweep through a serve daemon "
                              "(http://host:port or unix:///path.sock); "
                              "falls back to local execution when the "
                              "daemon is unreachable")

    p_worker = sub.add_parser(
        "worker",
        help="join a multinode sweep as one worker node")
    p_worker.add_argument("queue_dir",
                          help="the sweep's work-queue directory "
                               "(the coordinator's --queue-dir)")
    p_worker.add_argument("--node", default=None, metavar="NAME",
                          help="node name for leases/manifests/events "
                               "(default worker-<pid>)")
    p_worker.add_argument("--lease-ttl", type=float,
                          default=DEFAULT_LEASE_TTL, metavar="SECONDS",
                          help="lease time-to-live this node claims with "
                               f"(default {DEFAULT_LEASE_TTL:g})")
    p_worker.add_argument("--poll", type=float, default=0.05,
                          metavar="SECONDS",
                          help="idle sleep between claim scans "
                               "(default 0.05)")
    p_worker.add_argument("--retries", type=int, default=None, metavar="N",
                          help="attempts per workload (default 3)")
    p_worker.add_argument("--timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="per-workload wall-clock limit "
                               "(default: none)")
    p_worker.add_argument("--events", action="store_true",
                          help="journal this node's runtime events to "
                               "events/<node>.jsonl inside the queue")

    p_serve = sub.add_parser(
        "serve", parents=[obs_flags],
        help="run the sweep-as-a-service daemon")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="TCP bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=None, metavar="PORT",
                         help="TCP port to listen on (0 = ephemeral; "
                              "omit for UDS-only)")
    p_serve.add_argument("--uds", default=None, metavar="PATH",
                         help="Unix-domain socket path to listen on")
    p_serve.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="result-cache directory the daemon serves "
                              "from (default $REPRO_CACHE_DIR or "
                              "~/.cache/repro)")
    p_serve.add_argument("--cache-layout", default="flat",
                         choices=("flat", "sharded"),
                         help="result-cache on-disk layout (default flat)")
    p_serve.add_argument("--backend", default="auto",
                         choices=list(BACKENDS),
                         help="executor backend for cold batches "
                              "(default auto)")
    p_serve.add_argument("--jobs", type=int, default=1,
                         help="worker processes per cold batch (default 1)")
    p_serve.add_argument("--batch-window", type=float, default=0.02,
                         metavar="SECONDS",
                         help="how long cold units wait to batch up "
                              "(default 0.02)")
    p_serve.add_argument("--max-batch", type=int, default=16, metavar="N",
                         help="max units per dispatched plan (default 16)")
    p_serve.add_argument("--max-inflight", type=int, default=64,
                         metavar="N",
                         help="admission bound on in-flight simulation "
                              "units (default 64)")
    p_serve.add_argument("--client-rate", type=float, default=4.0,
                         metavar="PER_SEC",
                         help="per-client cold-unit token refill rate "
                              "(default 4/s)")
    p_serve.add_argument("--client-burst", type=float, default=16.0,
                         metavar="N",
                         help="per-client token-bucket burst (default 16)")
    p_serve.add_argument("--manifest", default=None, metavar="PATH",
                         help="journal served outcomes to this JSON-lines "
                              "file")
    p_serve.add_argument("--retries", type=int, default=None, metavar="N",
                         help="attempts per workload (default 3)")
    p_serve.add_argument("--timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-workload wall-clock limit "
                              "(default: none)")

    p_submit = sub.add_parser(
        "submit", help="run one workload through a serve daemon")
    p_submit.add_argument("graph")
    p_submit.add_argument("app")
    p_submit.add_argument("--server", required=True, metavar="URL",
                          help="daemon endpoint (http://host:port or "
                               "unix:///path.sock)")
    p_submit.add_argument("--configs", help="comma-separated codes (e.g. "
                                            "TG0,SGR,SDR)")
    p_submit.add_argument("--iters", type=int, default=None,
                          help="cap simulated iterations")
    p_submit.add_argument("--client", default=None, metavar="NAME",
                          help="client id for admission-control fairness "
                               "(default: anonymous)")
    p_submit.add_argument("--max-wait", type=float, default=60.0,
                          metavar="SECONDS",
                          help="how long to keep retrying admission "
                               "rejections (default 60)")
    return parser


_COMMANDS = {
    "datasets": _cmd_datasets,
    "profile": _cmd_profile,
    "predict": _cmd_predict,
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "worker": _cmd_worker,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
