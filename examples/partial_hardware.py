"""Inter-dependent design dimensions: choosing push/pull without DRFrlx.

Reproduces the paper's Section VI example: for MIS on the RAJ input, the
best configuration is push (SDR) *if* the hardware supports DRFrlx, but
pull (TG0) if it only supports DRF1 — so the software's push-vs-pull
choice cannot be made without knowing the hardware's consistency support.
The partial design-space model (Section IV-B) captures exactly this.

Usage: python examples/partial_hardware.py
"""

from dataclasses import replace

from repro import (
    predict_configuration,
    predict_partial_configuration,
    run_workload,
    scaled_system,
    sim_dataset,
    workload_profile,
)
from repro.graph import DEFAULT_SIM_SCALE
from repro.harness import render_bar
from repro.sim.config import DEFAULT_SYSTEM


def main() -> None:
    graph = sim_dataset("RAJ")
    scale = DEFAULT_SIM_SCALE["RAJ"]
    system = scaled_system(scale)

    profile = workload_profile(graph, "MIS", system=replace(
        DEFAULT_SYSTEM,
        l1_bytes=DEFAULT_SYSTEM.l1_bytes // scale,
        l2_bytes=DEFAULT_SYSTEM.l2_bytes // scale,
    ))
    full = predict_configuration(profile)
    partial = predict_partial_configuration(profile)
    print("MIS on RAJ (low volume, high reuse, HIGH imbalance)")
    print(f"  model, full design space:      {full.code}")
    print(f"  model, hardware without DRFrlx: {partial.code}")

    print("\nsimulating ...")
    result = run_workload("MIS", graph, system=system)
    normalized = result.normalized()
    print(f"\n{'config':>6s} | normalized execution time")
    for code, value in normalized.items():
        print(render_bar(code, value))

    restricted = {c: v for c, v in normalized.items()
                  if not c.endswith("R")}
    best_full = min(normalized, key=normalized.get)
    best_restricted = min(restricted, key=restricted.get)
    print(f"\nbest with DRFrlx:    {best_full}")
    print(f"best without DRFrlx: {best_restricted}")
    if best_full[0] != best_restricted[0]:
        print("\n=> the push-vs-pull choice FLIPS with consistency support: "
              "software designers deciding on push vs. pull must consider "
              "the consistency model the hardware provides (Section VI).")


if __name__ == "__main__":
    main()
