"""Locality engineering: move a graph through the taxonomy by reordering.

The taxonomy's reuse and imbalance metrics depend on the vertex order,
so relabeling a graph changes the specialization model's recommendation.
This example takes a shuffled mesh (WNG-like: the structure is local but
the ids hide it), recovers locality with RCM, and shows the model's
recommendation move from the scatter-friendly SGR toward the
locality-friendly configurations — then verifies both recommendations in
the simulator.

Usage: python examples/reorder_for_locality.py
"""

from repro import predict_configuration, run_workload
from repro.graph import grid_torus, rcm_order, shuffle_labels
from repro.graph.generators import attach_random_weights
from repro.harness import render_table
from repro.model import workload_profile
from repro.sim import SystemConfig


def main() -> None:
    system = SystemConfig(
        num_sms=15,
        l1_bytes=2 * 1024,
        l2_bytes=2 * 1024 * 1024,
        kernel_launch_cycles=500,
    )
    mesh = attach_random_weights(
        grid_torus(60, 200, stencil=8, name="mesh")
    )
    shuffled = shuffle_labels(mesh, seed=7)
    shuffled.name = "mesh-shuffled"
    recovered = rcm_order(shuffled)
    recovered.name = "mesh-rcm"

    rows = []
    recommendations = {}
    for graph in (shuffled, recovered):
        profile = workload_profile(graph, "PR", system)
        prediction = predict_configuration(profile)
        recommendations[graph.name] = prediction.code
        rows.append({
            "Ordering": graph.name,
            "Reuse": f"{profile.graph.reuse.reuse:.3f} "
                     f"({profile.graph.reuse_class})",
            "Imbalance": f"{profile.graph.imbalance:.3f} "
                         f"({profile.graph.imbalance_class})",
            "Model recommends": prediction.code,
        })
    print(render_table(rows, title="PR on a mesh, before/after RCM"))

    print("\nverifying in the simulator (PR, 4 iterations) ...")
    for graph in (shuffled, recovered):
        result = run_workload("PR", graph, system=system, max_iters=4)
        normalized = result.normalized()
        summary = "  ".join(f"{c}={v:.2f}" for c, v in normalized.items())
        print(f"  {graph.name:>14s}: {summary}  best={result.best_code} "
              f"(model: {recommendations[graph.name]})")


if __name__ == "__main__":
    main()
