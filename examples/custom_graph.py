"""Bring your own graph: Matrix Market IO, profiling, and prediction.

Demonstrates the full pipeline on a user-supplied input: generate (or
load) a graph, normalize it the way the paper preprocesses SuiteSparse
inputs, compute its Table II profile, and get a configuration
recommendation for every application.

Usage: python examples/custom_graph.py [file.mtx]
  Without an argument, a synthetic social-network-like graph is generated
  and round-tripped through a temporary .mtx file to exercise the loader.
"""

import sys
import tempfile
from pathlib import Path

from repro import (
    load_mtx,
    predict_configuration,
    save_mtx,
    workload_profile,
)
from repro.graph import (
    DegreeDistribution,
    GraphSpec,
    attach_random_weights,
    generate_graph,
    normalize,
)
from repro.harness import APPS, render_table
from repro.model import extract_features
from repro.taxonomy import profile_graph


def demo_graph() -> Path:
    graph = generate_graph(GraphSpec(
        num_vertices=20_000,
        degrees=DegreeDistribution("zipf", a=2.3, min_draws=1,
                                   max_draws=2000),
        locality=0.10,
        seed=99,
        name="social",
    ))
    path = Path(tempfile.mkdtemp()) / "social.mtx"
    save_mtx(graph, path)
    print(f"generated a synthetic social-network graph -> {path}")
    return path


def main(path: str | None = None) -> None:
    mtx = Path(path) if path else demo_graph()
    graph = load_mtx(mtx)
    graph = attach_random_weights(normalize(graph))
    print(f"loaded {graph.name}: |V|={graph.num_vertices} "
          f"|E|={graph.num_edges}")

    profile = profile_graph(graph)
    print("\n" + render_table([profile.as_row()], title="Graph profile"))

    rows = []
    for app in APPS:
        wp = workload_profile(graph, app)
        features = extract_features(wp)
        rows.append({
            "App": app,
            "Traversal": features.traversal,
            "Control": features.control,
            "Information": features.information,
            "Recommended config": predict_configuration(wp).code,
        })
    print("\n" + render_table(rows, title="Recommended configurations"))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
