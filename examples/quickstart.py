"""Quickstart: profile a workload, predict a configuration, simulate it.

Runs PageRank on the RAJ stand-in (a circuit-like graph with high reuse
and high imbalance), asks the specialization model which of the 12
system configurations to use, and then verifies the choice against a
timing simulation of the Figure 5 configuration set.

Usage: python examples/quickstart.py
"""

from dataclasses import replace

from repro import (
    predict_configuration,
    run_workload,
    scaled_system,
    sim_dataset,
    workload_profile,
)
from repro.graph import DEFAULT_SIM_SCALE
from repro.harness import render_breakdown_bars
from repro.model import explain_prediction
from repro.sim.config import DEFAULT_SYSTEM


def main() -> None:
    # 1. Load an input graph (a synthetic stand-in for the paper's rajat
    #    circuit graph, scaled for simulation; scale=1 gives full size).
    graph = sim_dataset("RAJ")
    scale = DEFAULT_SIM_SCALE["RAJ"]
    print(f"graph: {graph.name}  |V|={graph.num_vertices} "
          f"|E|={graph.num_edges}")

    # 2. Profile it.  The volume thresholds compare the working set to
    #    the cache sizes, so the profile uses caches scaled like the
    #    dataset (DESIGN.md explains the scaling contract).
    thresholds_system = replace(
        DEFAULT_SYSTEM,
        l1_bytes=DEFAULT_SYSTEM.l1_bytes // scale,
        l2_bytes=DEFAULT_SYSTEM.l2_bytes // scale,
    )
    profile = workload_profile(graph, "PR", system=thresholds_system)
    print()
    for line in explain_prediction(profile):
        print(" ", line)
    predicted = predict_configuration(profile)

    # 3. Simulate the Figure 5 configurations and compare.
    print("\nsimulating the Figure 5 configurations ...")
    result = run_workload("PR", graph, system=scaled_system(scale))
    print(f"\n{'config':>6s} |{'execution time, normalized to TG0':^42s}|")
    for code, value in result.normalized().items():
        breakdown = result.results[code].breakdown
        print(render_breakdown_bars(code, breakdown, value))
    print(f"\nempirical best: {result.best_code}   "
          f"model prediction: {predicted.code}")


if __name__ == "__main__":
    main()
