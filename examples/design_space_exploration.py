"""Design-space exploration: one workload across the full 12-point space.

The paper's Figure 5 shows five configurations per workload; this example
sweeps *all* coherence x consistency combinations for both push and pull
on a single workload, demonstrating why the omitted bars were omitted
(pull is insensitive to coherence/consistency; push DRF0 is uniformly
poor) and where the interesting trade-offs live.

Usage: python examples/design_space_exploration.py [APP] [GRAPH]
  APP: PR SSSP MIS CLR BC (default MIS);  GRAPH: AMZ DCT EML OLS RAJ WNG
"""

import sys

from repro import parse_config, run_workload, scaled_system, sim_dataset
from repro.configs import Configuration
from repro.graph import DEFAULT_SIM_SCALE
from repro.harness import render_breakdown_bars


def main(app: str = "MIS", graph_key: str = "RAJ") -> None:
    graph = sim_dataset(graph_key)
    system = scaled_system(DEFAULT_SIM_SCALE[graph_key])

    # The full design space for a static-traversal application: every
    # pull variant plus every push variant.
    configs = [
        Configuration("pull", coherence, consistency)
        for coherence in ("gpu", "denovo")
        for consistency in ("drf0", "drf1", "drfrlx")
    ] + [
        Configuration("push", coherence, consistency)
        for coherence in ("gpu", "denovo")
        for consistency in ("drf0", "drf1", "drfrlx")
    ]

    print(f"sweeping {app} on {graph.name} over {len(configs)} "
          "configurations ...")
    result = run_workload(app, graph, configs=configs, system=system)
    normalized = result.normalized(baseline="TG0")

    print(f"\n{'config':>6s} |{'execution time, normalized to TG0':^42s}|")
    for code, value in normalized.items():
        breakdown = result.results[code].breakdown
        print(render_breakdown_bars(code, breakdown, value))

    print(f"\nbest configuration: {result.best_code}")
    pull_codes = [c.code for c in configs if c.direction == "pull"]
    spread = max(normalized[c] for c in pull_codes) / min(
        normalized[c] for c in pull_codes
    )
    print(f"pull variants differ by only {100 * (spread - 1):.1f}% — "
          "no fine-grained atomics, so coherence and consistency barely "
          "matter (the paper shows a single pull bar, TG0)")
    print(f"push DRF0 pays invalidation+flush on every atomic: "
          f"SG0 = {normalized['SG0']:.2f}x TG0")


if __name__ == "__main__":
    main(*(sys.argv[1:3] or ["MIS", "RAJ"]))
