"""Runtime adaptation on a flexible memory system.

The paper closes by proposing "runtime methods that leverage flexible
memory systems to achieve optimal performance".  This example shows both
adaptation axes this library implements on a Spandex-like flexible
simulator:

1. online explore-then-commit selection of coherence + consistency, and
2. frontier-density-driven push/pull direction switching for SSSP.

Usage: python examples/adaptive_execution.py
"""

from repro.adaptive import run_adaptive, run_direction_adaptive
from repro.graph import DEFAULT_SIM_SCALE, sim_dataset
from repro.sim.config import scaled_system


def online_selection_demo() -> None:
    graph = sim_dataset("RAJ")
    system = scaled_system(DEFAULT_SIM_SCALE["RAJ"])
    print(f"== online configuration selection: PR on {graph.name}")
    result = run_adaptive("PR", graph, system=system, max_iters=8)
    for code, cycles in sorted(result.fixed_cycles.items()):
        marker = " <- oracle" if code == result.oracle_code else ""
        print(f"  fixed {code}: {cycles:12.0f} cycles{marker}")
    print(f"  adaptive:  {result.adaptive_cycles:12.0f} cycles "
          f"(committed to {result.committed} after exploring, "
          f"{result.reconfigurations} reconfigurations, "
          f"{result.overhead_vs_oracle:.2f}x the oracle)")


def direction_switching_demo() -> None:
    graph = sim_dataset("EML")
    system = scaled_system(DEFAULT_SIM_SCALE["EML"])
    print(f"\n== frontier-driven push/pull switching: SSSP on {graph.name}")
    result = run_direction_adaptive("SSSP", graph, system=system,
                                    max_iters=8)
    print(f"  fixed push: {result.fixed_push_cycles:12.0f} cycles")
    print(f"  fixed pull: {result.fixed_pull_cycles:12.0f} cycles")
    print(f"  adaptive:   {result.adaptive_cycles:12.0f} cycles")
    print(f"  directions: {' '.join(result.directions)}")
    print(f"  ({result.switches} switches; sparse frontiers push, dense "
          f"frontiers pull)")


if __name__ == "__main__":
    online_selection_demo()
    direction_switching_demo()
