"""Render a ``repro --events`` JSONL log as a Chrome trace timeline.

Usage::

    PYTHONPATH=src python -m repro sweep --iters 2 --events events.jsonl
    python tools/events_to_chrometrace.py events.jsonl -o trace.json

Load ``trace.json`` in ``chrome://tracing`` or https://ui.perfetto.dev.

Layout: one process ("repro run"), one timeline row per workload unit
(label order of first appearance) plus row 0 for plan/sweep-level
events.  ``unit.started`` .. ``unit.finished``/``unit.failed`` spans
become duration slices; retries, deadline overruns, worker crashes,
cache traffic, pool recycles and probation submissions appear as
instant markers on the owning row.  Sweep phases (plan / execute /
aggregate) are slices on row 0.  ``sim.batch`` records (batched-engine
occupancy) become a counter track plus per-kernel markers on row 0.

The converter is tolerant by design: torn lines and unknown event kinds
are skipped (counted in the summary), and a span left open by a killed
run is closed at the log's last timestamp so the trace still loads.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

PID = 1
META_TID = 0

# Kinds rendered as instant markers on the owning unit's row.
_UNIT_INSTANTS = (
    "unit.retried",
    "unit.overrun",
    "unit.cached",
    "unit.quarantined",
    "worker.crash",
    "cache.hit",
    "cache.miss",
    "cache.store",
    "cache.corrupt",
    "pool.probation",
)

# Kinds rendered as instant markers on the global (row 0) timeline.
# (workload.simulated carries app/graph, not a unit label, so it lands
# on the global row too.)
_GLOBAL_INSTANTS = ("pool.recycle", "plan.started", "plan.finished",
                    "workload.simulated")


def read_events(path: Path) -> tuple[list[dict], int]:
    """Parse the JSONL log; returns (events, skipped_line_count)."""
    events: list[dict] = []
    skipped = 0
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            skipped += 1
            continue
        if not isinstance(record, dict) or "kind" not in record \
                or "ts" not in record:
            skipped += 1
            continue
        events.append(record)
    return events, skipped


def convert(events: list[dict]) -> dict:
    """Build the Chrome ``traceEvents`` payload from parsed records."""
    if not events:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    t0 = min(event["ts"] for event in events)
    t_end = max(event["ts"] for event in events)

    def us(ts: float) -> float:
        return round((ts - t0) * 1e6, 3)

    tids: dict[str, int] = {}

    def tid_for(label: str) -> int:
        if label not in tids:
            tids[label] = len(tids) + 1  # row 0 is the global timeline
        return tids[label]

    trace: list[dict] = []
    # (label -> (start ts, attempt)) of the currently open unit span.
    open_spans: dict[str, tuple[float, int]] = {}
    skipped_kinds: dict[str, int] = {}

    def close_span(label: str, end_ts: float, outcome: str,
                   args: dict) -> None:
        started, attempt = open_spans.pop(label)
        trace.append({
            "name": f"{label} (attempt {attempt})",
            "cat": "unit",
            "ph": "X",
            "pid": PID,
            "tid": tid_for(label),
            "ts": us(started),
            "dur": max(round((end_ts - started) * 1e6, 3), 1.0),
            "args": dict(args, outcome=outcome),
        })

    for event in events:
        kind = event["kind"]
        ts = event["ts"]
        label = event.get("label", "")
        if kind == "unit.started":
            # A started span that never finished (killed run, or a
            # retry resubmission) is closed as interrupted.
            if label in open_spans:
                close_span(label, ts, "interrupted", {})
            open_spans[label] = (ts, event.get("attempt", 1))
        elif kind == "unit.finished":
            if label in open_spans:
                close_span(label, ts, "ok",
                           {"elapsed_s": event.get("elapsed")})
        elif kind == "unit.failed":
            if label in open_spans:
                close_span(label, ts,
                           f"failed:{event.get('cause', 'error')}",
                           {"message": event.get("message", "")})
        elif kind == "sweep.phase":
            trace.append({
                "name": f"phase:{event.get('name', '?')}",
                "cat": "sweep",
                "ph": "B" if event.get("boundary") == "begin" else "E",
                "pid": PID,
                "tid": META_TID,
                "ts": us(ts),
            })
        elif kind in _UNIT_INSTANTS:
            args = {key: value for key, value in event.items()
                    if key not in ("kind", "ts")}
            trace.append({
                "name": kind,
                "cat": "unit",
                "ph": "i",
                "s": "t",
                "pid": PID,
                "tid": tid_for(label) if label else META_TID,
                "ts": us(ts),
                "args": args,
            })
        elif kind == "sim.batch":
            # Batched-engine occupancy: a counter track (flush rounds /
            # batch widths / scalar fallbacks per kernel) plus a marker
            # carrying the kernel name for hover inspection.
            args = {key: value for key, value in event.items()
                    if key not in ("kind", "ts")}
            trace.append({
                "name": "batched occupancy",
                "cat": "sim",
                "ph": "C",
                "pid": PID,
                "tid": META_TID,
                "ts": us(ts),
                "args": {
                    "rounds": event.get("rounds", 0),
                    "mean_width": event.get("mean_width", 0.0),
                    "max_width": event.get("max_width", 0),
                    "scalar_fallback": event.get("scalar_fallback", 0),
                },
            })
            trace.append({
                "name": f"sim.batch:{event.get('kernel', '?')}",
                "cat": "sim",
                "ph": "i",
                "s": "p",
                "pid": PID,
                "tid": META_TID,
                "ts": us(ts),
                "args": args,
            })
        elif kind in _GLOBAL_INSTANTS:
            args = {key: value for key, value in event.items()
                    if key not in ("kind", "ts")}
            trace.append({
                "name": kind,
                "cat": "runtime",
                "ph": "i",
                "s": "p",
                "pid": PID,
                "tid": META_TID,
                "ts": us(ts),
                "args": args,
            })
        else:
            skipped_kinds[kind] = skipped_kinds.get(kind, 0) + 1

    # Close anything a killed run left open so the trace still renders.
    for label in list(open_spans):
        close_span(label, t_end, "unclosed", {})

    meta = [{
        "name": "process_name", "ph": "M", "pid": PID,
        "args": {"name": "repro run"},
    }, {
        "name": "thread_name", "ph": "M", "pid": PID, "tid": META_TID,
        "args": {"name": "plan/sweep"},
    }]
    meta.extend({
        "name": "thread_name", "ph": "M", "pid": PID, "tid": tid,
        "args": {"name": label},
    } for label, tid in tids.items())

    payload = {"traceEvents": meta + trace, "displayTimeUnit": "ms"}
    if skipped_kinds:
        payload["reproSkippedKinds"] = skipped_kinds
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("events", type=Path,
                        help="JSONL log written by --events")
    parser.add_argument("-o", "--output", type=Path, default=None,
                        help="trace file to write (default: "
                             "<events>.trace.json)")
    args = parser.parse_args(argv)

    events, torn = read_events(args.events)
    payload = convert(events)
    output = args.output or args.events.with_suffix(".trace.json")
    output.write_text(json.dumps(payload, indent=1) + "\n",
                      encoding="utf-8")

    slices = sum(1 for entry in payload["traceEvents"]
                 if entry.get("ph") == "X")
    instants = sum(1 for entry in payload["traceEvents"]
                   if entry.get("ph") == "i")
    print(f"wrote {output}: {len(events)} events -> {slices} slices, "
          f"{instants} markers"
          + (f", {torn} torn lines skipped" if torn else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
