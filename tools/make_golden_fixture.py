"""Regenerate tests/data/golden_timing.json from the current simulator.

The golden-equivalence test (tests/test_golden_equivalence.py) pins exact
cycle counts, stall breakdowns, and memory stats for a small app x graph x
config matrix covering all 12 hardware/software points (DRF0/DRF1/DRFrlx
x GPU/DeNovo x push/pull) plus the 6 dynamic ones for CC.  Any engine or
trace-pipeline change that alters modeled timing fails that test loudly.

Run this ONLY when a timing change is intentional, and say so in the
commit message:

    PYTHONPATH=src python tools/make_golden_fixture.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.graph.datasets import load_dataset
from repro.harness.runner import run_workload
from repro.configs import parse_config
from repro.sim.config import scaled_system

FIXTURE = Path(__file__).resolve().parent.parent / "tests" / "data" / \
    "golden_timing.json"

#: The full 12-point design space for static apps: push/pull x GPU/DeNovo
#: x DRF0/DRF1/DRFrlx.  (Figure 5 only shows a subset; the fixture pins
#: every combination so no optimization can hide behind the subset.)
STATIC_CONFIGS = [d + c + m for d in "TS" for c in "GD" for m in "01R"]
DYNAMIC_CONFIGS = ["D" + c + m for c in "GD" for m in "01R"]

#: (app, dataset key, scale, config codes) — small graphs, 2 iterations.
MATRIX = [
    ("PR", "EML", 64, STATIC_CONFIGS),
    ("SSSP", "DCT", 32, STATIC_CONFIGS),
    ("CC", "WNG", 32, DYNAMIC_CONFIGS),
]

MAX_ITERS = 2


def build() -> dict:
    workloads = []
    for app, key, scale, codes in MATRIX:
        graph = load_dataset(key, scale=scale)
        system = scaled_system(scale)
        result = run_workload(
            app, graph,
            configs=[parse_config(code) for code in codes],
            system=system,
            max_iters=MAX_ITERS,
        )
        workloads.append({
            "app": app,
            "dataset": key,
            "scale": scale,
            "max_iters": MAX_ITERS,
            "configs": codes,
            "results": {code: result.results[code].to_dict()
                        for code in codes},
        })
    return {"version": 1, "workloads": workloads}


def main() -> None:
    payload = build()
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    total = sum(len(w["configs"]) for w in payload["workloads"])
    print(f"wrote {FIXTURE} ({total} pinned configurations)")


if __name__ == "__main__":
    main()
