"""Traffic generator + acceptance harness for the ``repro.serve`` daemon.

Drives a real daemon (self-hosted as a subprocess on a Unix socket, or
an existing one via ``--server``) through the phases DESIGN §14 promises
and writes ``BENCH_serve.json`` with the numbers:

1. **cold-local** — each grid workload simulated in-process, uncached:
   the baseline a served cache hit is compared against.
2. **cold-served** — the grid submitted cold through the daemon (fills
   the server-side cache).
3. **warm** — ``--rounds`` passes over the warm grid on one keep-alive
   connection: p50/p99 latency and sustained qps.
4. **mixed** — the warm loop again while a background client pushes a
   fresh (never-cached) grid through the simulation pool: cache hits
   must keep flowing under cold load.
5. **restart** — the daemon is stopped and a fresh one pointed at the
   same cache directory: the whole grid must come back ``source:
   cache`` with **zero** re-simulated units.

Checks (exit 1 on any failure): zero dropped obs events, warm p99 under
``--p99-bound``, and warm-hit p99 at least ``--min-speedup`` times
faster than a cold single-workload simulation (0 disables).

Usage: PYTHONPATH=src python tools/serve_loadgen.py [--rounds N]
           [--out BENCH_serve.json] [--p99-bound S] [--min-speedup X]
"""

import argparse
import json
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import replace
from pathlib import Path

from repro.runtime import ExecutionPlan, run_plan
from repro.serve import ServeClient
from repro.sim.config import SystemConfig

GRAPHS = ("DCT", "RAJ")
APPS = ("PR", "CC")
SCALES = {"DCT": 64, "RAJ": 32}
MAX_ITERS = 8  # big enough that a cold sim dwarfs a cache read
SYSTEM = SystemConfig(num_sms=4, l1_bytes=1024, l2_bytes=16 * 1024,
                      tb_size=64, max_tbs_per_sm=2,
                      kernel_launch_cycles=100)

_failures = 0


def check(condition, message):
    global _failures
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {message}")
    if not condition:
        _failures = 1


def percentile(samples, q):
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def summarize(samples):
    return {
        "count": len(samples),
        "p50_ms": round(percentile(samples, 0.50) * 1e3, 3),
        "p99_ms": round(percentile(samples, 0.99) * 1e3, 3),
        "max_ms": round(max(samples) * 1e3, 3) if samples else None,
    }


def git_commit():
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


class Daemon:
    """A ``repro serve`` subprocess on a Unix socket."""

    def __init__(self, uds, cache_dir, events=None):
        self.uds = Path(uds)
        self.endpoint = f"unix://{self.uds}"
        argv = [sys.executable, "-m", "repro", "serve",
                "--uds", str(self.uds), "--cache-dir", str(cache_dir)]
        if events is not None:
            argv += ["--events", str(events)]
        self.proc = subprocess.Popen(
            argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        deadline = time.monotonic() + 30
        while not self.uds.exists():
            if self.proc.poll() is not None or time.monotonic() > deadline:
                out = self.proc.communicate()[0]
                raise RuntimeError(f"daemon failed to start:\n{out}")
            time.sleep(0.02)

    def stop(self):
        if self.proc.poll() is None:
            try:
                ServeClient(self.endpoint, timeout=5.0).shutdown()
            except Exception:
                self.proc.terminate()
        try:
            self.proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()


def timed_submit(client, spec):
    start = time.monotonic()
    envelope = client.submit(spec)
    return time.monotonic() - start, envelope


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=50,
                        help="warm passes over the grid (default 50)")
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument("--p99-bound", type=float, default=0.25,
                        help="warm p99 latency bound in seconds "
                             "(default 0.25)")
    parser.add_argument("--min-speedup", type=float, default=100.0,
                        help="required cold-sim / warm-p99 ratio "
                             "(0 disables; default 100)")
    parser.add_argument("--server", default=None, metavar="URL",
                        help="target an existing daemon instead of "
                             "self-hosting (skips the restart phase)")
    parser.add_argument("--events", default=None, metavar="PATH",
                        help="daemon event log (self-hosted only)")
    args = parser.parse_args(argv)

    plan = ExecutionPlan.for_sweep(GRAPHS, APPS, max_iters=MAX_ITERS,
                                   scales=SCALES, base_system=SYSTEM)
    specs = list(plan)

    print(f"phase 1: cold-local baseline ({len(specs)} units, uncached)")
    cold_local = []
    for spec in specs:
        start = time.monotonic()
        run_plan([spec])  # no cache: a true cold simulation
        cold_local.append(time.monotonic() - start)
    cold_unit_s = sum(cold_local) / len(cold_local)
    print(f"  mean cold simulation: {cold_unit_s * 1e3:.1f} ms/unit")

    workdir = Path(tempfile.mkdtemp(prefix="repro-serve-loadgen-"))
    daemon = None
    if args.server is None:
        events = args.events or workdir / "serve-events.jsonl"
        daemon = Daemon(workdir / "serve.sock", workdir / "cache",
                        events=events)
        endpoint = daemon.endpoint
    else:
        endpoint = args.server
    bench = {
        "schema": 1,
        "commit": git_commit(),
        "grid": {"graphs": GRAPHS, "apps": APPS, "max_iters": MAX_ITERS,
                 "units": len(specs)},
        "cold_local_s_per_unit": round(cold_unit_s, 4),
    }
    try:
        client = ServeClient(endpoint, client_id="loadgen")
        print(f"phase 2: cold submits through {endpoint}")
        cold_served = []
        for spec in specs:
            elapsed, envelope = timed_submit(client, spec)
            cold_served.append(elapsed)
            assert envelope["status"] == "ok", envelope
        bench["cold_served"] = summarize(cold_served)

        print(f"phase 3: warm loop ({args.rounds} x {len(specs)} requests)")
        warm = []
        warm_start = time.monotonic()
        for _ in range(args.rounds):
            for spec in specs:
                elapsed, envelope = timed_submit(client, spec)
                warm.append(elapsed)
                assert envelope["source"] == "cache", envelope
        warm_wall = time.monotonic() - warm_start
        bench["warm"] = summarize(warm)
        bench["warm"]["qps"] = round(len(warm) / warm_wall, 1)
        print(f"  p50 {bench['warm']['p50_ms']} ms, "
              f"p99 {bench['warm']['p99_ms']} ms, "
              f"{bench['warm']['qps']} req/s sustained")

        print("phase 4: warm traffic under a cold background sweep")
        fresh = [replace(spec, seed=spec.seed + 1) for spec in specs]
        background = threading.Thread(
            target=lambda: ServeClient(endpoint, client_id="cold-bg")
            .submit_many(fresh))
        background.start()
        mixed = []
        first_pass = True
        while first_pass or background.is_alive():
            first_pass = False
            for spec in specs:
                elapsed, envelope = timed_submit(client, spec)
                mixed.append(elapsed)
                assert envelope["source"] == "cache", envelope
        background.join()
        bench["warm_under_cold"] = summarize(mixed)

        stats = client.stats()
        bench["server_stats"] = {key: stats[key] for key in
                                 ("requests", "hits", "misses", "coalesced",
                                  "admitted", "rejected", "simulated",
                                  "failed", "batches", "obs_dropped")}
        check(stats["obs_dropped"] == 0,
              f"zero dropped obs events ({stats['obs_dropped']})")
        client.close()
    finally:
        if daemon is not None:
            daemon.stop()

    if daemon is not None:
        print("phase 5: restart — same cache, fresh daemon, zero resim")
        daemon = Daemon(workdir / "serve.sock", workdir / "cache")
        try:
            client = ServeClient(daemon.endpoint, client_id="loadgen")
            outcomes = client.submit_many(specs)
            stats = client.stats()
            client.close()
        finally:
            daemon.stop()
        all_cached = all(env["source"] == "cache" for env in outcomes)
        check(all_cached and stats["simulated"] == 0
              and stats["misses"] == 0,
              f"restarted daemon served {len(outcomes)} digest(s) from "
              f"cache with zero re-simulated units")
        bench["restart"] = {"zero_resim": all_cached
                            and stats["simulated"] == 0,
                            "hits": stats["hits"]}

    warm_p99_s = percentile(warm, 0.99)
    speedup = cold_unit_s / warm_p99_s if warm_p99_s > 0 else float("inf")
    bench["warm_hit_speedup_vs_cold_sim"] = round(speedup, 1)
    check(warm_p99_s <= args.p99_bound,
          f"warm p99 {warm_p99_s * 1e3:.2f} ms within bound "
          f"{args.p99_bound * 1e3:.0f} ms")
    if args.min_speedup > 0:
        check(speedup >= args.min_speedup,
              f"warm-hit p99 is {speedup:.0f}x faster than a cold "
              f"simulation (need >= {args.min_speedup:g}x)")

    out = Path(args.out)
    out.write_text(json.dumps(bench, indent=1) + "\n")
    print(f"wrote {out}")
    return _failures


if __name__ == "__main__":
    raise SystemExit(main())
