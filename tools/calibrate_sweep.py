"""Calibration sweep: run all 36 workloads, compare BEST against PRED.

Development tool used while tuning the timing model; the shipping version
of this comparison is benchmarks/bench_fig6_best_vs_pred.py.

Usage: python tools/calibrate_sweep.py [GRAPH ...]
"""

import sys
import time

from repro.graph import DEFAULT_SIM_SCALE, load_dataset
from repro.harness import run_workload
from repro.model import predict_configuration
from repro.sim.config import scaled_system
from repro.taxonomy import profile_graph, profile_workload

APPS = ("PR", "SSSP", "MIS", "CLR", "BC", "CC")


def main(keys):
    t00 = time.time()
    match = 0
    total = 0
    for key in keys:
        scale = DEFAULT_SIM_SCALE[key]
        graph = load_dataset(key, scale=scale)
        system = scaled_system(scale)
        profile = profile_graph(
            graph,
            l1_bytes=32 * 1024 // scale,
            l2_bytes=4 * 1024 * 1024 // scale,
        )
        print("===", key, flush=True)
        for app in APPS:
            t0 = time.time()
            pred = predict_configuration(profile_workload(profile, app)).code
            result = run_workload(app, graph, system=system)
            norm = result.normalized()
            total += 1
            if result.best_code == pred:
                verdict = "MATCH"
            elif norm[pred] / min(norm.values()) < 1.05:
                verdict = "close"
            else:
                verdict = "MISS"
            if verdict != "MISS":
                match += 1
            bars = {k: round(v, 3) for k, v in norm.items()}
            print(f"  {app:5s} {bars} best={result.best_code} "
                  f"pred={pred} {verdict} [{time.time() - t0:.0f}s]",
                  flush=True)
    print(f"match-or-close: {match}/{total}, total {time.time() - t00:.0f}s")


if __name__ == "__main__":
    main(sys.argv[1:] or list(DEFAULT_SIM_SCALE))
