"""Calibration sweep: run all 36 workloads, compare BEST against PRED.

Development tool used while tuning the timing model; the shipping version
of this comparison is benchmarks/bench_fig6_best_vs_pred.py.

Execution goes through repro.runtime, so calibration runs parallelize
(REPRO_JOBS=N) and memoize per-workload results (REPRO_CACHE_DIR=DIR) —
re-running after a model tweak re-simulates nothing and just re-scores,
since predictions are computed model-side.

Usage: python tools/calibrate_sweep.py [GRAPH ...]
"""

import os
import sys
import time

from repro.graph import DEFAULT_SIM_SCALE
from repro.model import predict_configuration
from repro.runtime import (
    ExecutionPlan,
    ResultCache,
    load_graph,
    run_plan,
)
from repro.taxonomy import profile_graph, profile_workload

APPS = ("PR", "SSSP", "MIS", "CLR", "BC", "CC")


def main(keys):
    t00 = time.time()
    match = 0
    total = 0

    plan = ExecutionPlan.for_sweep(keys, APPS)
    cache_dir = os.environ.get("REPRO_CACHE_DIR")
    results = run_plan(
        plan,
        jobs=int(os.environ.get("REPRO_JOBS", "1")),
        cache=ResultCache(cache_dir) if cache_dir else None,
        progress=lambda label: print(f"  [{time.time() - t00:.0f}s] {label}",
                                     flush=True),
    )

    units = iter(zip(plan, results))
    for key in keys:
        scale = DEFAULT_SIM_SCALE[key]
        profile = None
        print("===", key, flush=True)
        for app in APPS:
            spec, result = next(units)
            if profile is None:
                profile = profile_graph(
                    load_graph(spec.graph),
                    l1_bytes=32 * 1024 // scale,
                    l2_bytes=4 * 1024 * 1024 // scale,
                )
            pred = predict_configuration(profile_workload(profile, app)).code
            norm = result.normalized()
            total += 1
            if result.best_code == pred:
                verdict = "MATCH"
            elif norm[pred] / min(norm.values()) < 1.05:
                verdict = "close"
            else:
                verdict = "MISS"
            if verdict != "MISS":
                match += 1
            bars = {k: round(v, 3) for k, v in norm.items()}
            print(f"  {app:5s} {bars} best={result.best_code} "
                  f"pred={pred} {verdict}", flush=True)
    print(f"match-or-close: {match}/{total}, total {time.time() - t00:.0f}s")


if __name__ == "__main__":
    main(sys.argv[1:] or list(DEFAULT_SIM_SCALE))
