"""Kill-and-resume chaos smoke: SIGKILL a worker mid-sweep, then resume.

CI's standing proof that node-level fault tolerance works end to end,
not just unit-by-unit:

Phase A runs a two-node multinode sweep with a deterministic
``node-kill`` injected into one unit — the worker holding it takes a
real SIGKILL mid-unit.  The coordinator must notice the death, reclaim
the lease, restart the node under a fresh incarnation, let the unit be
stolen, and drain the queue with results bit-identical to a serial run.

Phase B re-runs the same sweep against the same queue and cache — the
resume path.  Every unit must restore from the shared cache with ZERO
re-simulation, proven by the work queue's own event logs: no new
``lease.claim`` appears anywhere in phase B.

The event accounting identity is checked across both phases: with kills
as the only chaos, every claim ends in exactly one completion win or
dies with its lease, so ``claims == units + expires``.

Usage: python tools/chaos_smoke.py [QUEUE_DIR]
Exits nonzero on the first violated invariant.
"""

import json
import shutil
import sys
import tempfile
from pathlib import Path

from repro import obs
from repro.runtime import (
    ExecutionPlan,
    FaultInjector,
    FaultRule,
    MultiNodeExecutor,
    RetryPolicy,
    RunManifest,
    RESULT_SCHEMA_VERSION,  # noqa: F401  (pin: results are schema-keyed)
    run_plan,
)
from repro.sim.config import SystemConfig

GRAPHS = ("DCT", "RAJ")
APPS = ("PR", "CC")
SCALES = {"DCT": 64, "RAJ": 32}
KILLED_UNIT = "RAJ/CC"
SYSTEM = SystemConfig(num_sms=4, l1_bytes=1024, l2_bytes=16 * 1024,
                      tb_size=64, max_tbs_per_sm=2,
                      kernel_launch_cycles=100)
POLICY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)

_failures = 0


def check(condition, message):
    global _failures
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {message}")
    if not condition:
        _failures = 1


def worker_claims(queue_dir):
    """Every lease.claim journaled by worker nodes, across node logs."""
    claims = []
    for path in sorted((queue_dir / "events").glob("*.jsonl")):
        for line in path.read_text().splitlines():
            if not line.strip():
                continue
            event = json.loads(line)
            if event["kind"] == "lease.claim":
                claims.append(event)
    return claims


def main(queue_dir=None):
    owns_dir = queue_dir is None
    queue_dir = Path(queue_dir or tempfile.mkdtemp(prefix="repro-chaos-"))
    plan = ExecutionPlan.for_sweep(GRAPHS, APPS, max_iters=2,
                                   scales=SCALES, base_system=SYSTEM)

    print(f"plan: {len(plan)} units; baseline serial run ...")
    baseline = [r.to_dict() for r in run_plan(plan)]

    print(f"phase A: 2-node sweep, SIGKILL on first touch of "
          f"{KILLED_UNIT} (queue: {queue_dir})")
    injector = FaultInjector(rules=(
        FaultRule(kind="node-kill", match=KILLED_UNIT, attempts=1),))
    observer = obs.enable(ring=65536)
    ring = observer.sinks[0]
    executor = MultiNodeExecutor(nodes=2, policy=POLICY, injector=injector,
                                 queue_dir=queue_dir, lease_ttl=10.0)
    results = run_plan(plan, executor=executor, policy=POLICY,
                       manifest=queue_dir / "run.jsonl")
    obs.disable()

    check([r.to_dict() for r in results] == baseline,
          "chaos results bit-identical to serial")

    kills = [e for e in ring.events("node.leave")
             if e.data["reason"] == "crash"]
    expires = ring.events("lease.expire")
    claims = worker_claims(queue_dir)
    check(len(kills) == 1, f"exactly one worker crashed ({len(kills)})")
    check(len(expires) == 1 and expires[0].data["reason"] == "node-death",
          "the dead worker's lease was reclaimed on observed death")
    check(len(claims) == len(plan) + len(expires),
          f"event accounting: claims ({len(claims)}) == units "
          f"({len(plan)}) + expires ({len(expires)})")

    merged = RunManifest(queue_dir / "manifest.jsonl")
    completed = merged.completed_digests()
    check(completed == {spec.digest() for spec in plan},
          "merged manifest covers every unit")
    check(all("node" in entry for entry in merged.entries()),
          "merged manifest keeps per-node provenance")

    print("phase B: resume against the same queue and cache ...")
    claims_before = len(claims)
    # Observer on again: with it off, workers would not journal events
    # and the no-new-claims check below would pass vacuously.
    obs.enable(ring=1024)
    executor = MultiNodeExecutor(nodes=2, policy=POLICY,
                                 queue_dir=queue_dir, lease_ttl=10.0)
    resumed = run_plan(plan, executor=executor, policy=POLICY,
                       manifest=queue_dir / "run.jsonl")
    obs.disable()
    check([r.to_dict() for r in resumed] == baseline,
          "resumed results bit-identical to serial")
    check(len(worker_claims(queue_dir)) == claims_before,
          "zero re-simulated units on resume (no new lease claims)")
    journal = RunManifest(queue_dir / "run.jsonl")
    check(journal.completed_digests() == {spec.digest() for spec in plan},
          "run manifest records every unit completed across both phases")

    if owns_dir and not _failures:
        shutil.rmtree(queue_dir, ignore_errors=True)
    print("chaos smoke:", "FAILED" if _failures else "passed")
    return _failures


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else None))
