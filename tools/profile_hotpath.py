"""cProfile the simulator's hot path on one workload.

Companion to ``benchmarks/bench_perf.py``: the bench tracks wall-clock
trends; this tool answers *where* the time goes when a trend moves.  It
runs one workload (default: PR on EML, 2 iterations, the full static
config matrix) under cProfile and prints the top functions.

cProfile inflates call-heavy code severalfold — use the reported times to
rank functions, and ``bench_perf.py`` / ``--profile`` wall numbers for
any before/after claim.

Usage::

    PYTHONPATH=src python tools/profile_hotpath.py
    PYTHONPATH=src python tools/profile_hotpath.py --app SSSP --graph DCT \\
        --iters 3 --sort cumulative --limit 40
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys

from repro.configs import parse_config
from repro.graph import DEFAULT_SIM_SCALE, load_dataset
from repro.harness.runner import run_workload
from repro.sim.config import resolve_engine, scaled_system
from repro.sim.engine import BatchedEngine

STATIC_CONFIGS = [d + c + m for d in "TS" for c in "GD" for m in "01R"]
DYNAMIC_CONFIGS = ["D" + c + m for c in "GD" for m in "01R"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--app", default="PR",
                        help="application (default PR)")
    parser.add_argument("--graph", default="EML",
                        help="dataset key (default EML)")
    parser.add_argument("--iters", type=int, default=2,
                        help="iteration cap (default 2)")
    parser.add_argument("--configs", default=None,
                        help="comma-separated config codes (default: the "
                             "full static or dynamic matrix for the app)")
    parser.add_argument("--sort", default="tottime",
                        choices=["tottime", "cumulative", "ncalls"],
                        help="pstats sort key (default tottime)")
    parser.add_argument("--limit", type=int, default=25,
                        help="rows to print (default 25)")
    parser.add_argument("--engine", choices=["scalar", "batched"],
                        default=None,
                        help="simulator engine to profile (default: the "
                             "process default, see REPRO_SIM_ENGINE); "
                             "'batched' also prints per-kernel batch "
                             "occupancy (flush rounds, widths, scalar "
                             "fallbacks)")
    args = parser.parse_args(argv)

    app = args.app.upper()
    key = args.graph.upper()
    if args.configs:
        codes = args.configs.split(",")
    else:
        codes = DYNAMIC_CONFIGS if app == "CC" else STATIC_CONFIGS
    scale = DEFAULT_SIM_SCALE.get(key, 1)
    graph = load_dataset(key, scale=scale)
    system = scaled_system(scale)
    configs = [parse_config(code) for code in codes]

    engine = resolve_engine(args.engine)
    print(f"profiling {app} on {key} (scale {scale}), "
          f"{len(configs)} configs, iters={args.iters}, engine={engine}",
          file=sys.stderr)

    # Under the batched engine, also collect the per-feed occupancy
    # counters (the same payload the sim.batch obs event carries) so
    # the profile is accompanied by *why*: how often the deferred
    # machinery engaged vs. resolved inline.
    batch_log: list[tuple[str, dict]] = []
    orig_feed = BatchedEngine.feed
    if engine == "batched":
        def logging_feed(self, kernel):
            duration = orig_feed(self, kernel)
            if self._batch_info is not None:
                batch_log.append((kernel.name, dict(self._batch_info)))
            return duration

        BatchedEngine.feed = logging_feed

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        run_workload(app, graph, configs=configs, system=system,
                     max_iters=args.iters, engine=engine)
    finally:
        profiler.disable()
        BatchedEngine.feed = orig_feed
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.limit)

    if batch_log:
        rounds = sum(info["rounds"] for _, info in batch_log)
        widths = sum(info["rounds"] * info["mean_width"]
                     for _, info in batch_log)
        fallback = sum(info["scalar_fallback"] for _, info in batch_log)
        max_width = max(info["max_width"] for _, info in batch_log)
        if rounds:
            occupancy = (f"{rounds} flush rounds, "
                         f"mean width {widths / rounds:.1f}, "
                         f"max width {max_width}")
        else:
            occupancy = "0 flush rounds (all accesses resolved inline)"
        print(f"batched occupancy over {len(batch_log)} kernel feeds: "
              f"{occupancy}, {fallback} scalar-fallback ops")
        per_kernel: dict[str, list[int]] = {}
        for name, info in batch_log:
            agg = per_kernel.setdefault(name, [0, 0, 0])
            agg[0] += info["rounds"]
            agg[1] += info["scalar_fallback"]
            agg[2] += 1
        for name, (r, fb, feeds) in sorted(
                per_kernel.items(), key=lambda kv: -kv[1][0])[:10]:
            print(f"  {name}: {feeds} feeds, {r} rounds, "
                  f"{fb} scalar fallbacks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
